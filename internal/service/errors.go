package service

import (
	"context"
	"errors"
	"fmt"

	"quma/internal/expt"
)

// The stable error taxonomy. Every failure the service reports — HTTP
// envelope codes and terminal job codes alike — carries exactly one of
// these values in its `code` field, so clients branch on a closed set
// while the free-text message stays free to improve. The chaos suite
// (internal/faultinject) asserts the mapping under injected faults.
const (
	// CodeInvalidArgument: the request itself is wrong — malformed JSON,
	// unknown experiment type, out-of-range field, oversize body or
	// batch. Complete at submit time; an accepted job never fails with it.
	CodeInvalidArgument = "invalid_argument"
	// CodeCanceled: the job was canceled — DELETE /v1/jobs/{id}, client
	// disconnect of a canceled context, or drain-deadline expiry.
	CodeCanceled = "canceled"
	// CodeDeadlineExceeded: the job hit its execution deadline
	// (Config.JobTimeout) and was preempted mid-sweep.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeResourceExhausted: a server bound was hit — the job queue is
	// full (429 + Retry-After) or intake is draining (503).
	CodeResourceExhausted = "resource_exhausted"
	// CodeInternal: execution failed — a physics/fit error, an injected
	// fault, or a recovered worker panic (the message then carries the
	// stack). The server itself stays up and keeps serving other jobs.
	CodeInternal = "internal"
	// CodeUnauthenticated: the request presented a credential the server
	// does not recognize — a malformed Authorization header or an unknown
	// API key (401). Requests with no credential at all are the anonymous
	// tenant, never this code.
	CodeUnauthenticated = "unauthenticated"
	// CodeNotFound: no such job (unknown or evicted id). Lookup-shaped,
	// not part of the execution taxonomy.
	CodeNotFound = "not_found"
	// CodeFailedPrecondition: the resource exists but is in the wrong
	// state for the call — e.g. fetching the result of an unfinished,
	// failed, or canceled job.
	CodeFailedPrecondition = "failed_precondition"
)

// classifyErr maps a job execution error onto the taxonomy. Order
// matters: a panic that wraps nothing is internal; context errors win
// over whatever text surrounds them (the expt layer wraps ctx.Err with
// %w precisely so this classification survives message changes).
func classifyErr(err error) string {
	switch {
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadlineExceeded
	default:
		return CodeInternal
	}
}

// jobErrorMessage renders a terminal job error, appending the recovered
// stack when the failure was a worker panic so the operator sees the
// crash site without the process having crashed.
func jobErrorMessage(i int, exType string, err error) string {
	msg := fmt.Sprintf("experiments[%d] (%s): %v", i, exType, err)
	var pe *expt.PanicError
	if errors.As(err, &pe) {
		msg += "\n" + pe.Stack
	}
	return msg
}
