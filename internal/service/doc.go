// Package service is the quma batch experiment service: a long-lived,
// concurrent job scheduler and HTTP/JSON API in front of the experiment
// layer (internal/expt). It is the layer that turns the simulator from a
// collection of one-shot CLIs into a system — requests from many clients
// share one expt.Env for the life of the process, so the caches the
// sweep engine used to rebuild per invocation (assembled programs,
// pooled machines with their rotation/decoherence caches and compiled
// replay schedules) amortize across all traffic.
//
// # API
//
//	POST   /v1/jobs           submit a batch of experiment requests
//	                          202 {"id": ...}; 400 structured validation
//	                          error; 401 unauthenticated for a malformed
//	                          or unknown Authorization: Bearer key (no
//	                          header is the anonymous tenant); 429
//	                          resource_exhausted with Retry-After when
//	                          the job queue is full (queue_full) or the
//	                          tenant is at quota (tenant_quota); 503
//	                          while draining. An Idempotency-Key header
//	                          dedupes resubmission: a repeated (key,
//	                          batch) pair answers 200 with the original
//	                          job, a reused key with a different batch
//	                          answers 409 failed_precondition. An unkeyed
//	                          resubmission whose canonical form is cached
//	                          answers 200 {"id", "cache": "hit", ...}
//	                          terminal-immediately with the original
//	                          retained job (Cache-Status response header)
//	GET    /v1/jobs/{id}       job status + progress (+ terminal code)
//	DELETE /v1/jobs/{id}       cancel: a queued job goes terminal at
//	                          once, a running job is preempted mid-sweep
//	                          within a bounded number of shots;
//	                          idempotent, 200 with the current status
//	GET    /v1/jobs/{id}/result completed results (409 with the job's
//	                          terminal code for failed/canceled jobs)
//	GET    /v1/jobs/{id}/stream SSE progress events, one per completed
//	                          experiment, closing with the terminal state.
//	                          Events carry monotonic per-job ids; a
//	                          reconnect with Last-Event-ID resumes after
//	                          that id without duplicates (/progress is an
//	                          alias of /stream)
//	GET    /healthz           liveness + queue depth (total and per
//	                          priority class), cache hit/miss/eviction
//	                          counters (+ journal recovery stats when
//	                          durability is on)
//
// # Error taxonomy
//
// Every non-2xx envelope and every terminal job failure carries exactly
// one stable code (errors.go): invalid_argument, canceled,
// deadline_exceeded, resource_exhausted, internal — plus the
// lookup-shaped not_found, failed_precondition, and unauthenticated. A
// `reason` slug subdivides codes that cover several causes (queue_full
// vs tenant_quota vs draining, all resource_exhausted);
// messages are free text and carry the recovered stack for worker
// panics. The chaos suite (internal/faultinject) pins the mapping under
// injected faults.
//
// # Invariants (the contract future PRs build on)
//
// Determinism: a request's result depends only on its own fields —
// (seed, params) — never on concurrency, queue order, worker count,
// which pooled machine served it, or what ran on the Env before it.
// This is inherited, not re-proven: the sweep engine's seeding contract
// (expt.DeriveSeed), Machine.ResetState bit-identity, and the pool
// sharding by config-minus-seed (expt.Env) compose so that a service
// job is bit-identical to a direct internal/expt call. The service adds
// no randomness of its own: job IDs never enter result payloads, and
// result JSON contains no timestamps. Enforced by
// TestConcurrentIdenticalJobsBitIdentical (under -race in CI) and the
// CI smoke job (server result diffed against `quma-serve -once`).
//
// Result schema: every result envelope is {type, schema, result} with
// schema = ResultSchemaVersion. Byte-identity is promised per schema
// version: v2 introduced shot-sharded replay (expt.ShotShardPlan), which
// re-laid-out the PRNG streams of requests whose per-point shot count
// exceeds expt.ShotShardSize — their sampled results differ from v1's
// (statistics pinned at 5σ by internal/conformance) while smaller shot
// counts stay byte-identical. v3 scrubs the result-neutral workers and
// shot_workers knobs from the result's params echo (they render as 0),
// making the result bytes a pure function of the canonical request form;
// requests that never set those fields are byte-identical to v2.
//
// # Canonicalization and the result cache
//
// Every submitted batch is reduced to a canonical form: the decoded
// experiment structs with their result-neutral fields (workers,
// shot_workers — the knobs the determinism contracts prove can never
// change a result) scrubbed to zero, re-marshaled, and hashed. That one
// hash drives three mechanisms: Idempotency-Key conflict detection, the
// journaled request bytes recovery re-executes, and the
// content-addressed result cache. TestCanonicalFormCoversEveryRequestField
// forces every ExperimentRequest field to be explicitly classified as
// result-affecting (hashed) or result-neutral (scrubbed, with a proof
// obligation) — an unclassified new field fails the build's tests, so
// the cache can never silently collide distinct results.
//
// The cache (Config.CacheSize, default 256, negative disables) is a
// bounded LRU mapping canonical hash → retained job id. It stores
// references, never bytes: a hit answers with the original retained
// job, so cache hits are byte-identical to cold execution by
// construction — there is exactly one result document per canonical
// form. The cache is strictly an index over the retention window:
// entries are inserted when a job retires done, invalidated when
// retention evicts the job, and rebuilt from the journal at recovery,
// so a hit can never reference a 404 and a restart keeps warm. Keyed
// (Idempotency-Key) submissions bypass the cache and keep their
// stricter per-key contract. Hit/miss/eviction counters are on
// /healthz.
//
// # Tenancy, admission, and fair scheduling
//
// Tenants are declared statically (Config.Tenants; quma-serve
// -api-keys file.json) with a bearer key, a priority class, and
// quotas. Requests without an Authorization header run as the built-in
// anonymous tenant — batch class, no quotas — so an un-keyed deployment
// behaves exactly as before tenancy existed; a malformed or unknown
// credential is 401, never a silent demotion. Quotas bound a tenant's
// non-terminal jobs (max_queued_jobs) and total in-flight experiments
// (max_experiments_in_flight); the charge is taken at admission and
// released when the job retires, and over-quota submissions get 429
// tenant_quota with a Retry-After derived from the tenant's own
// backlog. The tenant name rides the journal's accepted record, so
// recovery restores each re-enqueued job's quota charge and class.
//
// Dequeue order is deterministic weighted fair scheduling (queue.go):
// per-class FIFO lanes drained by stride scheduling, interactive 3:1
// over batch under contention, ties to interactive, passes caught up on
// empty→non-empty transitions so an idle class earns priority but never
// unbounded credit. The schedule is a pure function of arrival order
// and classes — results never depend on it (each job is a pure function
// of its request); reproducibility makes fairness testable
// (TestFairDequeueServiceOrder pins the exact completion order).
//
// Cache lifetime: the Env (and with it every per-machine ReplayCache)
// lives exactly as long as the Server. Invalidation is delegated
// downward — core.Machine.UploadPulse/SetQubitParams drop compiled
// schedules whose aliased cache entries died, and the replay engine
// validates every memo hit against a fresh recording — so no service
// restart is ever needed for correctness.
//
// Backpressure: the job queue is bounded (Config.QueueSize); a full
// queue rejects with 429 and a Retry-After hint rather than queueing
// unboundedly. Draining (Server.Drain, wired to SIGINT/SIGTERM in
// cmd/quma-serve) stops intake with 503, finishes every queued and
// running job, then returns — submitted work is never dropped.
// Server.DrainTimeout layers a hard deadline on top: on expiry every
// non-terminal job's context is canceled (the jobs end `canceled`,
// retaining nothing) so shutdown time is bounded by the preemption
// latency, not by the slowest sweep.
//
// Isolation: a panic anywhere inside a job's sweep workers is recovered
// at the worker boundary (expt.PanicError), fails that job alone with
// code `internal` and the captured stack in the message, and discards —
// never pools — the machine it unwound from. The server keeps serving;
// the chaos suite submits work after every injected panic and asserts
// byte-identical results.
//
// Bounded memory: everything a client can grow is capped — request
// bodies (maxBodyBytes), asm program size (maxProgramBytes), batch size
// (Config.MaxBatch), retained terminal jobs and their results
// (Config.MaxRetainedJobs, oldest evicted to 404), the Env's program
// cache and pool shards, and each machine's compiled-schedule memo
// (epoch-flushed on overflow; flushes cost recomputation, never
// correctness).
//
// # Durability and recovery
//
// With Config.Journal set (quma-serve -journal-dir), the server keeps a
// crash-safe record of every accepted job in an append-only, fsync'd,
// checksummed log (internal/journal): one record at acceptance —
// written and synced before the 202 is sent, carrying the canonicalized
// request bytes and their hash — and one per state transition after it
// (running, done/failed/canceled with result bytes and result hash,
// evicted). The accepted append is load-bearing: if it fails, the
// submission is rejected 500 internal/journal_append_failed rather than
// accepted undurably. Later appends are best-effort, which is safe
// because of the determinism invariant above — if a crash eats a
// terminal record, recovery simply re-executes the request and
// reproduces the exact bytes the lost record held.
//
// Recovery is replay: a restarted server reads the journal before
// serving, restores finished jobs (results verified against the
// journaled hash; a mismatch demotes the job to re-execution), and
// re-enqueues every non-terminal job in original submission order under
// its original ID. At-least-once re-execution plus byte-deterministic
// results gives exactly-once-observable semantics — a client polling
// across a crash sees, at worst, a latency blip. A torn or corrupt
// journal tail (the signature a mid-write crash leaves) is truncated
// away at open, never a startup failure; /healthz reports the
// truncation. Idempotency-Key dedup state is itself journaled (the key
// rides the accepted record), so resubmitting after a crash returns the
// recovered original job. Recovered terminal jobs occupy retention
// slots like live ones, and eviction writes a journal tombstone that
// compaction (segment rotation) later drops — restarts never grow the
// journal or the retained set beyond Config.MaxRetainedJobs. The
// content-addressed cache index is rebuilt from the recovered terminal
// jobs in the same replay (and recovered evictions invalidate it), so
// repeat submissions keep hitting across restarts with the exact
// pre-crash bytes. The kill-based harness (crash_test.go) SIGKILLs a
// real server process mid-sweep — including under injected disk faults
// (faultinject.Plan.JournalFaults) — restarts it on the same directory,
// and pins all of the above under -race.
//
// Cancellation: each job owns a context created at submit; DELETE and
// the drain deadline cancel it, and Config.JobTimeout is layered on top
// at dequeue (context.WithTimeout). The context flows through Execute
// into every expt.Env entry point and down into the replay engine's
// shot loop, which checks it with bounded staleness (every
// replay.ctxCheckShots shots) — so preemption lands mid-sweep, not
// between experiments. A preempted job never exposes a partial result:
// the expt layer returns (nil, wrapped ctx error) and job.finish drops
// the result slots on any non-done terminal state. The flip side is the
// determinism half of the contract: a job that completes is bit-identical
// to an uncancellable run — cancellation can only abort, never perturb
// (cancel_test.go in internal/expt pins both halves under -race).
//
// batch_lanes is a result-neutral scheduling knob, exactly like
// workers and shot_workers: it selects the lockstep shot-batched SoA
// executor (internal/qphys.TrajBatch) for groups of shot shards, and
// every lane replays the same per-shard seed and rng stream as the
// scalar sharded path, so the result bytes are identical for any
// value. Canonicalization therefore scrubs it from the cache key (a
// batched and a scalar submission of the same physics hit the same
// cache entry), no schema bump was needed to add it, and the service
// conformance tests pin byte-identical -once output with and without
// batching.
package service
