// Package service is the quma batch experiment service: a long-lived,
// concurrent job scheduler and HTTP/JSON API in front of the experiment
// layer (internal/expt). It is the layer that turns the simulator from a
// collection of one-shot CLIs into a system — requests from many clients
// share one expt.Env for the life of the process, so the caches the
// sweep engine used to rebuild per invocation (assembled programs,
// pooled machines with their rotation/decoherence caches and compiled
// replay schedules) amortize across all traffic.
//
// # API
//
//	POST /v1/jobs            submit a batch of experiment requests
//	                         202 {"id": ...}; 400 structured validation
//	                         error; 429 when the job queue is full;
//	                         503 while draining
//	GET  /v1/jobs/{id}        job status + progress
//	GET  /v1/jobs/{id}/result completed results (409 until done)
//	GET  /v1/jobs/{id}/stream SSE progress events, one per completed
//	                         experiment, closing with the terminal state
//	GET  /healthz            liveness + queue depth
//
// # Invariants (the contract future PRs build on)
//
// Determinism: a request's result depends only on its own fields —
// (seed, params) — never on concurrency, queue order, worker count,
// which pooled machine served it, or what ran on the Env before it.
// This is inherited, not re-proven: the sweep engine's seeding contract
// (expt.DeriveSeed), Machine.ResetState bit-identity, and the pool
// sharding by config-minus-seed (expt.Env) compose so that a service
// job is bit-identical to a direct internal/expt call. The service adds
// no randomness of its own: job IDs never enter result payloads, and
// result JSON contains no timestamps. Enforced by
// TestConcurrentIdenticalJobsBitIdentical (under -race in CI) and the
// CI smoke job (server result diffed against `quma-serve -once`).
//
// Cache lifetime: the Env (and with it every per-machine ReplayCache)
// lives exactly as long as the Server. Invalidation is delegated
// downward — core.Machine.UploadPulse/SetQubitParams drop compiled
// schedules whose aliased cache entries died, and the replay engine
// validates every memo hit against a fresh recording — so no service
// restart is ever needed for correctness.
//
// Backpressure: the job queue is bounded (Config.QueueSize); a full
// queue rejects with 429 and a Retry-After hint rather than queueing
// unboundedly. Draining (Server.Drain, wired to SIGINT/SIGTERM in
// cmd/quma-serve) stops intake with 503, finishes every queued and
// running job, then returns — submitted work is never dropped.
//
// Bounded memory: everything a client can grow is capped — request
// bodies (maxBodyBytes), asm program size (maxProgramBytes), batch size
// (Config.MaxBatch), retained terminal jobs and their results
// (Config.MaxRetainedJobs, oldest evicted to 404), the Env's program
// cache and pool shards, and each machine's compiled-schedule memo
// (epoch-flushed on overflow; flushes cost recomputation, never
// correctness).
//
// Timeouts: each job gets Config.JobTimeout of execution time measured
// from dequeue; the deadline is checked between experiments (the expt
// layer has no cancellation points inside a sweep), so a job may finish
// the experiment in flight before failing with "timeout".
package service
