package service

// The kill-based crash-test harness. The parent test re-executes its
// own test binary as a real quma-serve-shaped server process (TestMain
// diverts on QUMA_CRASH_SERVER=1), drives it over HTTP, SIGKILLs it at
// fault-plan-chosen points — mid-sweep, mid-journal-append (torn
// write) — and restarts it on the same journal directory. The
// assertions are the durability contract:
//
//   - no accepted job is lost: every job reaches a terminal state after
//     recovery, under its original ID;
//   - recovered results are byte-identical to uncrashed direct
//     execution (the determinism contract is what makes at-least-once
//     re-execution exactly-once-observable);
//   - duplicate submissions dedupe across the restart via
//     Idempotency-Key;
//   - a torn journal tail truncates cleanly instead of failing startup;
//   - the error taxonomy is unchanged under journal faults.
//
// CI runs this file under -race (the child inherits the instrumented
// binary).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"quma/internal/expt"
	"quma/internal/faultinject"
	"quma/internal/journal"
)

func TestMain(m *testing.M) {
	if os.Getenv("QUMA_CRASH_SERVER") == "1" {
		runCrashServer()
		return
	}
	os.Exit(m.Run())
}

// runCrashServer is the child-process server: open (and so replay) the
// journal, optionally install deterministic fault hooks from the
// environment, announce the listen address on stdout, and serve until
// killed. It is intentionally quma-serve in miniature, inside the test
// binary so the crash suite needs no separate build step and runs under
// the same -race instrumentation.
func runCrashServer() {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "crash-server:", err)
		os.Exit(1)
	}
	var diskFaults *journal.Faults
	if spec := os.Getenv("QUMA_DISK_FAULT"); spec != "" {
		kind, ordStr, ok := strings.Cut(spec, "=")
		ord, err := strconv.Atoi(ordStr)
		if !ok || err != nil {
			fail(fmt.Errorf("bad QUMA_DISK_FAULT %q", spec))
		}
		var plan faultinject.Plan
		switch kind {
		case "failappend":
			plan.FailJournalAppend = ord
		case "torn":
			plan.TornWrite = ord
		case "slowfsync":
			plan.SlowFsync = ord
		default:
			fail(fmt.Errorf("unknown disk fault %q", kind))
		}
		diskFaults = plan.JournalFaults()
	}
	jr, err := journal.Open(journal.Options{Dir: os.Getenv("QUMA_JOURNAL_DIR"), Faults: diskFaults})
	if err != nil {
		fail(err)
	}
	cfg := Config{Workers: 2, Journal: jr}
	if us := os.Getenv("QUMA_SLOW_SHOT_US"); us != "" {
		n, err := strconv.Atoi(us)
		if err != nil {
			fail(err)
		}
		// Slow every engine shot so the parent can reliably SIGKILL the
		// process mid-sweep. Sleeping perturbs nothing: result bytes are
		// a pure function of the request.
		cfg.Faults = &expt.FaultHooks{Shot: func(int) { time.Sleep(time.Duration(n) * time.Microsecond) }}
	}
	s := New(cfg).Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	fmt.Printf("CRASH_SERVER_ADDR=%s\n", ln.Addr())
	fail(http.Serve(ln, s.Handler()))
}

// crashProc is a handle on one child server incarnation.
type crashProc struct {
	t   *testing.T
	cmd *exec.Cmd
	url string
}

// startCrashServer launches the child on the given journal dir.
// faultSpec is "" or "kind=N" (failappend/torn/slowfsync); slowShotUS
// > 0 makes every engine shot sleep that many microseconds.
func startCrashServer(t *testing.T, dir, faultSpec string, slowShotUS int) *crashProc {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"QUMA_CRASH_SERVER=1",
		"QUMA_JOURNAL_DIR="+dir,
		"QUMA_DISK_FAULT="+faultSpec,
		"QUMA_SLOW_SHOT_US="+strconv.Itoa(slowShotUS),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &crashProc{t: t, cmd: cmd}
	t.Cleanup(p.kill)

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if addr, ok := strings.CutPrefix(sc.Text(), "CRASH_SERVER_ADDR="); ok {
				addrc <- addr
				break
			}
		}
		io.Copy(io.Discard, stdout)
		close(addrc)
	}()
	select {
	case addr, ok := <-addrc:
		if !ok || addr == "" {
			t.Fatal("crash server exited before announcing its address")
		}
		p.url = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("crash server did not announce an address")
	}
	return p
}

// kill SIGKILLs the child — the crash under test. Idempotent.
func (p *crashProc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill()
	}
	p.cmd.Wait()
}

// submitKeyed posts a batch with an optional Idempotency-Key, returning
// the job id and the HTTP status.
func submitKeyed(t *testing.T, base string, req SubmitRequest, key string) (string, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if key != "" {
		hreq.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return "", resp.StatusCode
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(b, &acc); err != nil {
		t.Fatalf("submit response %s: %v", b, err)
	}
	return acc.ID, resp.StatusCode
}

// waitStatus polls until the job reports one of the wanted statuses.
func waitStatus(t *testing.T, base, id string, deadline time.Duration, want ...string) string {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if st.Status == w {
				return st.Status
			}
		}
		if terminal(st.Status) {
			t.Fatalf("job %s reached %s (%s), want one of %v", id, st.Status, st.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %v within %v", id, want, deadline)
	return ""
}

// directResults executes a batch on a fresh Env, returning the compact
// per-experiment result documents — the uncrashed reference bytes.
func directResults(t *testing.T, reqs []ExperimentRequest) [][]byte {
	t.Helper()
	env := expt.NewEnv()
	out := make([][]byte, len(reqs))
	for i, ex := range reqs {
		res, err := Execute(context.Background(), env, ex)
		if err != nil {
			t.Fatalf("direct experiments[%d]: %v", i, err)
		}
		out[i] = res
	}
	return out
}

// assertResultsMatchDirect fetches a job's results and compares each
// (compacted) against direct execution of the same requests.
func assertResultsMatchDirect(t *testing.T, base, id string, reqs []ExperimentRequest) {
	t.Helper()
	body := fetchResult(t, base, id)
	var doc struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != len(reqs) {
		t.Fatalf("job %s has %d results, want %d", id, len(doc.Results), len(reqs))
	}
	direct := directResults(t, reqs)
	for i := range reqs {
		var a, b bytes.Buffer
		if err := json.Compact(&a, doc.Results[i]); err != nil {
			t.Fatal(err)
		}
		if err := json.Compact(&b, direct[i]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("job %s experiments[%d] (%s): recovered result differs from uncrashed execution\nrecovered: %s\ndirect:    %s",
				id, i, reqs[i].Type, a.Bytes(), b.Bytes())
		}
	}
}

func healthz(t *testing.T, base string) healthJournal {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Journal *healthJournal `json:"journal"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Journal == nil {
		t.Fatal("healthz has no journal block on a journaled server")
	}
	return *h.Journal
}

// quickAsm builds a one-experiment asm batch (fast even under the slow
// hook) whose result is deterministic.
func quickAsm(seed int64) SubmitRequest {
	return SubmitRequest{Experiments: []ExperimentRequest{{
		Type: "asm", Seed: seed, Rounds: 30,
		Program: "mov r15, 400\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n",
	}}}
}

// slowT1 is the SIGKILL victim: with the child's slow-shot hook and
// workers=1 in the request it stays mid-sweep for seconds, while the
// fault-free restarted child re-executes it in milliseconds.
func slowT1() SubmitRequest {
	return SubmitRequest{Experiments: []ExperimentRequest{{
		Type: "t1", Seed: 11, Backend: "trajectory", Rounds: 120, Workers: 1,
	}}}
}

// TestCrashRecoveryCompletesAcceptedJobs is the flagship crash test:
// kill a server holding a done job, a running job, and a queued job;
// restart it on the same journal; every job must reach done under its
// original ID with bytes identical to uncrashed execution, and a
// duplicate submission must dedupe to the original job across the
// restart.
func TestCrashRecoveryCompletesAcceptedJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()
	p1 := startCrashServer(t, dir, "", 2000)

	// Job A completes before the crash; its journaled result bytes must
	// survive verbatim.
	doneReq := quickAsm(9)
	doneID, code := submitKeyed(t, p1.url, doneReq, "crash-done")
	if doneID == "" {
		t.Fatalf("submit done-job: status %d", code)
	}
	waitStatus(t, p1.url, doneID, time.Minute, StatusDone)
	preCrash := fetchResult(t, p1.url, doneID)

	// Job B is killed mid-sweep; job C dies queued behind it.
	runID, code := submitKeyed(t, p1.url, slowT1(), "crash-running")
	if runID == "" {
		t.Fatalf("submit running-job: status %d", code)
	}
	queuedReq := quickAsm(13)
	queuedID, code := submitKeyed(t, p1.url, queuedReq, "crash-queued")
	if queuedID == "" {
		t.Fatalf("submit queued-job: status %d", code)
	}
	waitStatus(t, p1.url, runID, time.Minute, StatusRunning)
	p1.kill() // SIGKILL mid-sweep: no drain, no journal close

	p2 := startCrashServer(t, dir, "", 0)
	h := healthz(t, p2.url)
	if h.RecoveredJobs < 3 || h.Reenqueued < 1 {
		t.Fatalf("healthz journal block %+v: want ≥3 recovered, ≥1 re-enqueued", h)
	}

	// Dedup across the restart: resubmitting with a used key returns the
	// original job (200, same id), not a new one.
	dupID, code := submitKeyed(t, p2.url, doneReq, "crash-done")
	if code != http.StatusOK || dupID != doneID {
		t.Fatalf("idempotent resubmit: got id %s status %d, want %s status 200", dupID, code, doneID)
	}
	dupRunID, code := submitKeyed(t, p2.url, slowT1(), "crash-running")
	if code != http.StatusOK || dupRunID != runID {
		t.Fatalf("idempotent resubmit of recovered job: got id %s status %d, want %s status 200", dupRunID, code, runID)
	}
	// Same key, different request: refused, not silently remapped.
	if _, code := submitKeyed(t, p2.url, quickAsm(77), "crash-done"); code != http.StatusConflict {
		t.Fatalf("idempotency key reuse with a different request: status %d, want 409", code)
	}

	// No accepted job is lost, and every recovered result is
	// byte-identical to an uncrashed run.
	waitStatus(t, p2.url, runID, 2*time.Minute, StatusDone)
	waitStatus(t, p2.url, queuedID, 2*time.Minute, StatusDone)
	if postCrash := fetchResult(t, p2.url, doneID); !bytes.Equal(preCrash, postCrash) {
		t.Fatalf("journaled result changed across the crash:\npre:  %s\npost: %s", preCrash, postCrash)
	}
	assertResultsMatchDirect(t, p2.url, runID, slowT1().Experiments)
	assertResultsMatchDirect(t, p2.url, queuedID, queuedReq.Experiments)
}

// TestCrashTornTailTruncatesCleanly tears the victim's terminal record
// mid-write (the torn-write fault lands on the done append), kills the
// server, and restarts: startup must repair the tail by truncation —
// never fail — demote the job to non-terminal, re-execute it, and
// reproduce the pre-crash bytes exactly.
func TestCrashTornTailTruncatesCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()
	// Appends for one job: accepted(1), running(2), done(3) — tear 3.
	p1 := startCrashServer(t, dir, "torn=3", 0)
	req := quickAsm(21)
	id, code := submitKeyed(t, p1.url, req, "torn-job")
	if id == "" {
		t.Fatalf("submit: status %d", code)
	}
	waitStatus(t, p1.url, id, time.Minute, StatusDone)
	preCrash := fetchResult(t, p1.url, id)
	p1.kill()

	p2 := startCrashServer(t, dir, "", 0)
	h := healthz(t, p2.url)
	if h.TruncatedBytes == 0 {
		t.Fatalf("healthz journal block %+v: torn tail was not truncated", h)
	}
	if h.Reenqueued != 1 {
		t.Fatalf("healthz journal block %+v: torn-terminal job was not re-enqueued", h)
	}
	waitStatus(t, p2.url, id, time.Minute, StatusDone)
	if postCrash := fetchResult(t, p2.url, id); !bytes.Equal(preCrash, postCrash) {
		t.Fatalf("re-executed result differs from the pre-crash bytes:\npre:  %s\npost: %s", preCrash, postCrash)
	}
}

// TestCrashUnderSlowFsync pins that durability latency is only latency:
// with every fsync slowed, jobs still complete, survive a SIGKILL, and
// recover byte-identically.
func TestCrashUnderSlowFsync(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()
	p1 := startCrashServer(t, dir, "slowfsync=1", 0)
	req := quickAsm(33)
	id, code := submitKeyed(t, p1.url, req, "")
	if id == "" {
		t.Fatalf("submit: status %d", code)
	}
	waitStatus(t, p1.url, id, time.Minute, StatusDone)
	pre := fetchResult(t, p1.url, id)
	p1.kill()
	p2 := startCrashServer(t, dir, "", 0)
	waitStatus(t, p2.url, id, time.Minute, StatusDone)
	if post := fetchResult(t, p2.url, id); !bytes.Equal(pre, post) {
		t.Fatal("result changed across crash under slow fsync")
	}
}

// TestJournalAppendFailureKeepsTaxonomy: an injected failure of the
// accepted-record append must reject that submission with the stable
// `internal` code and reason journal_append_failed — and the server
// must keep serving: the next submission succeeds with bytes identical
// to a journal-less server.
func TestJournalAppendFailureKeepsTaxonomy(t *testing.T) {
	dir := t.TempDir()
	jr, err := journal.Open(journal.Options{Dir: dir, Faults: faultinject.Plan{FailJournalAppend: 1}.JournalFaults()})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	s := New(Config{Workers: 1, Journal: jr}).Start()
	defer s.Drain()
	hs := httpTestServer(t, s)

	req := quickAsm(41)
	body, _ := json.Marshal(req)
	resp, b := postJSON(t, hs+"/v1/jobs", string(body))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("submit with failing journal: status %d body %s, want 500", resp.StatusCode, b)
	}
	var e struct {
		Error struct {
			Code   string `json:"code"`
			Reason string `json:"reason"`
		} `json:"error"`
	}
	if err := json.Unmarshal(b, &e); err != nil || e.Error.Code != CodeInternal || e.Error.Reason != "journal_append_failed" {
		t.Fatalf("want internal/journal_append_failed, got %s (err %v)", b, err)
	}

	// The fault ordinal has passed: the server keeps accepting work.
	id, code := submitKeyed(t, hs, req, "")
	if id == "" {
		t.Fatalf("post-fault submit: status %d", code)
	}
	waitStatus(t, hs, id, time.Minute, StatusDone)
	assertResultsMatchDirect(t, hs, id, req.Experiments)
}

// httpTestServer mounts a started server on an httptest listener and
// returns its base URL.
func httpTestServer(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return "http://" + ln.Addr().String()
}

// TestJournalDoesNotPerturbResults is the journal-off regression guard:
// the same batch served with and without a journal must produce
// byte-identical result documents — durability may never leak into
// result bytes.
func TestJournalDoesNotPerturbResults(t *testing.T) {
	jr, err := journal.Open(journal.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	journaled := New(Config{Workers: 2, Journal: jr}).Start()
	defer journaled.Drain()
	plain := New(Config{Workers: 2}).Start()
	defer plain.Drain()
	ju, pu := httpTestServer(t, journaled), httpTestServer(t, plain)

	req := testBatch()
	jid, code := submitKeyed(t, ju, req, "perturb-check")
	if jid == "" {
		t.Fatalf("journaled submit: status %d", code)
	}
	pid, code := submitKeyed(t, pu, req, "")
	if pid == "" {
		t.Fatalf("plain submit: status %d", code)
	}
	waitStatus(t, ju, jid, 2*time.Minute, StatusDone)
	waitStatus(t, pu, pid, 2*time.Minute, StatusDone)
	jb, pb := fetchResult(t, ju, jid), fetchResult(t, pu, pid)
	if !bytes.Equal(jb, pb) {
		t.Fatalf("journaled result differs from journal-off result:\nwith:    %s\nwithout: %s", jb, pb)
	}
}

// TestRecoveredTerminalJobsCountTowardRetention: recovered jobs occupy
// retention slots exactly like live ones — restarts never grow the
// retained set or the journal without bound.
func TestRecoveredTerminalJobsCountTowardRetention(t *testing.T) {
	dir := t.TempDir()

	// Distinct seeds per submission: identical batches would be served
	// from the result cache instead of creating (and evicting) jobs.
	runOne := func(base string, seed int64) string {
		id, code := submitKeyed(t, base, quickAsm(seed), "")
		if id == "" {
			t.Fatalf("submit: status %d", code)
		}
		waitStatus(t, base, id, time.Minute, StatusDone)
		return id
	}
	get := func(base, id string) int {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	jr, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, MaxRetainedJobs: 1, Journal: jr}).Start()
	base := httpTestServer(t, s)
	id1 := runOne(base, 55)
	id2 := runOne(base, 56) // evicts id1
	if got := get(base, id1); got != http.StatusNotFound {
		t.Fatalf("evicted job pre-restart: status %d, want 404", got)
	}
	s.Drain()
	jr.Close()

	// Restart: the eviction held (journal tombstone), the survivor is
	// queryable, and it occupies the single retention slot.
	jr2, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, MaxRetainedJobs: 1, Journal: jr2}).Start()
	base2 := httpTestServer(t, s2)
	if got := get(base2, id1); got != http.StatusNotFound {
		t.Fatalf("evicted job post-restart: status %d, want 404", got)
	}
	if got := get(base2, id2); got != http.StatusOK {
		t.Fatalf("retained job post-restart: status %d, want 200", got)
	}
	fetchResult(t, base2, id2)
	// A recovered terminal job is evicted by new work like a live one.
	id3 := runOne(base2, 57)
	if got := get(base2, id2); got != http.StatusNotFound {
		t.Fatalf("recovered job not evicted by new work: status %d, want 404", got)
	}
	if got := get(base2, id3); got != http.StatusOK {
		t.Fatalf("new job after recovery: status %d, want 200", got)
	}
	s2.Drain()
	jr2.Close()

	// Many restarts stay bounded: the journal's live state never exceeds
	// retention + in-flight.
	for i := 0; i < 3; i++ {
		jrN, err := journal.Open(journal.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		sN := New(Config{Workers: 1, MaxRetainedJobs: 1, Journal: jrN}).Start()
		baseN := httpTestServer(t, sN)
		runOne(baseN, int64(60+i))
		sN.Drain()
		if n := len(jrN.States()); n > 2 {
			t.Fatalf("journal holds %d jobs after restart %d; retention is not bounding recovery", n, i)
		}
		jrN.Close()
	}
}

// TestStreamReconnectResumesWithLastEventID covers the SSE reconnect
// contract: events carry monotonic ids, a reconnect with Last-Event-ID
// resumes after that id without duplicates, and a stale (too-large) id
// still receives the terminal event.
func TestStreamReconnectResumesWithLastEventID(t *testing.T) {
	_, hs := startTestServer(t, Config{Workers: 1})
	req := SubmitRequest{Experiments: []ExperimentRequest{
		quickAsm(61).Experiments[0],
		quickAsm(62).Experiments[0],
	}}
	id, resp := submit(t, hs.URL, req)
	if id == "" {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	waitDone(t, hs.URL, id)

	type sse struct {
		id int
		ev progressEvent
	}
	readStream := func(lastEventID string) []sse {
		t.Helper()
		hreq, err := http.NewRequest(http.MethodGet, hs.URL+"/v1/jobs/"+id+"/progress", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastEventID != "" {
			hreq.Header.Set("Last-Event-ID", lastEventID)
		}
		sresp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		defer sresp.Body.Close()
		var out []sse
		var cur sse
		sc := bufio.NewScanner(sresp.Body)
		for sc.Scan() {
			line := sc.Text()
			if v, ok := strings.CutPrefix(line, "id: "); ok {
				cur.id, _ = strconv.Atoi(v)
			}
			if v, ok := strings.CutPrefix(line, "data: "); ok {
				if err := json.Unmarshal([]byte(v), &cur.ev); err != nil {
					t.Fatalf("bad SSE payload %q: %v", v, err)
				}
				out = append(out, cur)
				if terminal(cur.ev.Status) {
					break
				}
			}
		}
		return out
	}

	// Full history: ids must be 1..n strictly increasing, ending done.
	full := readStream("")
	if len(full) < 3 {
		t.Fatalf("full stream has %d events, want queued/running/.../done", len(full))
	}
	for i, e := range full {
		if e.id != i+1 {
			t.Fatalf("event %d has id %d, want %d", i, e.id, i+1)
		}
	}
	last := full[len(full)-1]
	if last.ev.Status != StatusDone || last.ev.Completed != 2 {
		t.Fatalf("terminal event %+v, want done 2/2", last)
	}

	// Resume after id 2: exactly the tail, no duplicates.
	tail := readStream("2")
	if len(tail) != len(full)-2 {
		t.Fatalf("resume from 2 delivered %d events, want %d", len(tail), len(full)-2)
	}
	for i, e := range tail {
		if e.id != full[i+2].id || e.ev != full[i+2].ev {
			t.Fatalf("resumed event %d = %+v, want %+v", i, e, full[i+2])
		}
	}

	// A stale id from a previous incarnation: the terminal event still
	// arrives, with an id above the client's.
	stale := readStream("999")
	if len(stale) != 1 || stale[0].ev.Status != StatusDone || stale[0].id <= 999 {
		t.Fatalf("stale reconnect got %+v, want one terminal event with id > 999", stale)
	}
}

// TestCacheHitsSurviveCrash is the durability half of the result-cache
// contract: the content-addressed index is rebuilt from the journal at
// recovery, so an unkeyed resubmission after a SIGKILL is answered
// terminal-immediately with the pre-crash job's exact bytes — no
// re-execution, no byte drift.
func TestCacheHitsSurviveCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	dir := t.TempDir()
	req := quickAsm(70)

	p1 := startCrashServer(t, dir, "", 0)
	id1, code := submitKeyed(t, p1.url, req, "")
	if id1 == "" {
		t.Fatalf("submit: status %d", code)
	}
	waitStatus(t, p1.url, id1, time.Minute, StatusDone)
	pre := fetchResult(t, p1.url, id1)
	// Warm sanity: the live server already serves this form from cache.
	if hitID, code := submitKeyed(t, p1.url, req, ""); code != http.StatusOK || hitID != id1 {
		t.Fatalf("pre-crash resubmit: status %d id %s, want 200 %s", code, hitID, id1)
	}
	p1.kill()

	p2 := startCrashServer(t, dir, "", 0)
	hitID, code := submitKeyed(t, p2.url, req, "")
	if code != http.StatusOK || hitID != id1 {
		t.Fatalf("post-crash resubmit: status %d id %s, want 200 cache hit on %s", code, hitID, id1)
	}
	if post := fetchResult(t, p2.url, hitID); !bytes.Equal(post, pre) {
		t.Fatalf("post-crash cached result differs from pre-crash bytes:\npre:  %s\npost: %s", pre, post)
	}
}

// TestCacheEvictionConsistentAcrossRestart drives cache × retention ×
// recovery: a form evicted from the retention window must miss (and
// re-execute byte-identically) both before and after a restart, while
// the retained form keeps hitting — the rebuilt index tracks exactly
// the recovered retention window, never a stale superset.
func TestCacheEvictionConsistentAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	reqA, reqB := quickAsm(71), quickAsm(72)

	jr, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, MaxRetainedJobs: 1, Journal: jr}).Start()
	base := httpTestServer(t, s)
	idA, _ := submitKeyed(t, base, reqA, "")
	waitStatus(t, base, idA, time.Minute, StatusDone)
	bytesA := fetchResult(t, base, idA)
	idB, _ := submitKeyed(t, base, reqB, "")
	waitStatus(t, base, idB, time.Minute, StatusDone) // evicts A

	// A's eviction invalidated its cache entry: resubmitting is a miss
	// that re-executes to the identical bytes (and re-enters the window,
	// evicting B in turn).
	idA2, code := submitKeyed(t, base, reqA, "")
	if code != http.StatusAccepted {
		t.Fatalf("evicted form pre-restart: status %d, want 202", code)
	}
	waitStatus(t, base, idA2, time.Minute, StatusDone)
	if got := fetchResult(t, base, idA2); !bytes.Equal(got, bytesA) {
		t.Fatal("re-executed result differs from the evicted original")
	}
	s.Drain()
	jr.Close()

	// Restart: only the retained window (the re-executed A) is indexed.
	jr2, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, MaxRetainedJobs: 1, Journal: jr2}).Start()
	defer jr2.Close()
	defer s2.Drain()
	base2 := httpTestServer(t, s2)

	hitID, code := submitKeyed(t, base2, reqA, "")
	if code != http.StatusOK || hitID != idA2 {
		t.Fatalf("retained form post-restart: status %d id %s, want 200 hit on %s", code, hitID, idA2)
	}
	if got := fetchResult(t, base2, hitID); !bytes.Equal(got, bytesA) {
		t.Fatal("post-restart cached result differs from original bytes")
	}
	if idB2, code := submitKeyed(t, base2, reqB, ""); code != http.StatusAccepted {
		t.Fatalf("evicted form post-restart: status %d, want 202 (miss)", code)
	} else {
		waitStatus(t, base2, idB2, time.Minute, StatusDone)
	}
}
