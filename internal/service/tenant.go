package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
)

// AnonymousTenant is the identity of unauthenticated traffic. It always
// exists, runs in the batch class, and has no quotas — exactly the
// pre-tenancy behavior, so a server started without -api-keys (or a
// client that sends no Authorization header) is unchanged.
const AnonymousTenant = "anonymous"

// TenantConfig declares one tenant in the static API-key file: its
// bearer key, priority class, and admission quotas.
type TenantConfig struct {
	// Name identifies the tenant in journal records and errors. Must be
	// unique and must not claim the reserved anonymous identity.
	Name string `json:"name"`
	// Key is the static bearer credential (Authorization: Bearer <key>).
	Key string `json:"key"`
	// Class is the tenant's priority class: "interactive" or "batch"
	// (default batch). Interactive jobs dequeue ahead of batch 3:1 under
	// contention (see fairQueue).
	Class string `json:"class,omitempty"`
	// MaxQueuedJobs bounds the tenant's non-terminal jobs (queued +
	// running); 0 is unlimited. Exceeding it is 429 tenant_quota.
	MaxQueuedJobs int `json:"max_queued_jobs,omitempty"`
	// MaxExperimentsInFlight bounds the total experiments across the
	// tenant's non-terminal jobs; 0 is unlimited.
	MaxExperimentsInFlight int `json:"max_experiments_in_flight,omitempty"`
}

// LoadAPIKeys reads a tenant key file: JSON {"tenants": [TenantConfig...]}.
func LoadAPIKeys(path string) ([]TenantConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Tenants []TenantConfig `json:"tenants"`
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Tenants) == 0 {
		return nil, fmt.Errorf("%s: no tenants declared", path)
	}
	return doc.Tenants, nil
}

// tenantState is one tenant's live admission accounting. The counters
// are guarded by Server.mu: acquired at submit (and at recovery
// re-enqueue), released exactly once when the job retires.
type tenantState struct {
	name    string
	class   string
	maxJobs int
	maxExps int

	activeJobs int
	activeExps int
}

// admit checks the tenant's quotas for a new job of n experiments;
// a failure names the exhausted quota for the 429 reason detail.
func (t *tenantState) admit(n int) (string, bool) {
	if t.maxJobs > 0 && t.activeJobs >= t.maxJobs {
		return fmt.Sprintf("tenant %q has %d jobs in flight, quota is %d", t.name, t.activeJobs, t.maxJobs), false
	}
	if t.maxExps > 0 && t.activeExps+n > t.maxExps {
		return fmt.Sprintf("tenant %q has %d experiments in flight, adding %d exceeds quota %d", t.name, t.activeExps, n, t.maxExps), false
	}
	return "", true
}

func (t *tenantState) acquire(n int) { t.activeJobs++; t.activeExps += n }
func (t *tenantState) release(n int) { t.activeJobs--; t.activeExps -= n }

// tenantTable resolves bearer keys (and, at recovery, journaled tenant
// names) to tenant state. Built once at New; the map itself is
// immutable afterwards, only the per-tenant counters mutate (under
// Server.mu).
type tenantTable struct {
	byKey  map[string]*tenantState
	byName map[string]*tenantState
	anon   *tenantState
}

func newTenantTable(cfgs []TenantConfig) (*tenantTable, error) {
	t := &tenantTable{
		byKey:  make(map[string]*tenantState),
		byName: make(map[string]*tenantState),
		anon:   &tenantState{name: AnonymousTenant, class: ClassBatch},
	}
	t.byName[AnonymousTenant] = t.anon
	for i, c := range cfgs {
		if c.Name == "" || c.Key == "" {
			return nil, fmt.Errorf("tenant %d: name and key are required", i)
		}
		if c.Name == AnonymousTenant {
			return nil, fmt.Errorf("tenant %d: %q is the reserved unauthenticated identity", i, AnonymousTenant)
		}
		switch c.Class {
		case "", ClassBatch, ClassInteractive:
		default:
			return nil, fmt.Errorf("tenant %q: unknown class %q (want %q or %q)", c.Name, c.Class, ClassInteractive, ClassBatch)
		}
		if c.MaxQueuedJobs < 0 || c.MaxExperimentsInFlight < 0 {
			return nil, fmt.Errorf("tenant %q: quotas must be non-negative", c.Name)
		}
		if _, dup := t.byName[c.Name]; dup {
			return nil, fmt.Errorf("tenant %q: duplicate name", c.Name)
		}
		if _, dup := t.byKey[c.Key]; dup {
			return nil, fmt.Errorf("tenant %q: key already assigned to another tenant", c.Name)
		}
		class := c.Class
		if class == "" {
			class = ClassBatch
		}
		st := &tenantState{name: c.Name, class: class, maxJobs: c.MaxQueuedJobs, maxExps: c.MaxExperimentsInFlight}
		t.byName[c.Name] = st
		t.byKey[c.Key] = st
	}
	return t, nil
}

// authenticate resolves a request to its tenant. No Authorization header
// is the anonymous tenant (compatibility: tenancy is opt-in per
// request); a malformed header or unknown key is rejected — presenting a
// credential means asking to be authenticated, and a typo'd key silently
// demoted to anonymous would be a quota/priority escalation hazard in
// the other direction.
func (t *tenantTable) authenticate(r *http.Request) (*tenantState, *apiError) {
	h := r.Header.Get("Authorization")
	if h == "" {
		return t.anon, nil
	}
	key, ok := strings.CutPrefix(h, "Bearer ")
	if !ok || key == "" {
		return nil, &apiError{Code: CodeUnauthenticated, Reason: "malformed_authorization", Message: `Authorization header must be "Bearer <key>"`}
	}
	st, ok := t.byKey[key]
	if !ok {
		return nil, &apiError{Code: CodeUnauthenticated, Reason: "unknown_key", Message: "unknown API key"}
	}
	return st, nil
}

// resolve maps a journaled tenant name back to its state at recovery.
// A name absent from the current key file (the file changed across the
// restart) falls back to anonymous: the job still re-executes — accepted
// work is never dropped — it just stops counting against a quota that
// no longer exists.
func (t *tenantTable) resolve(name string) *tenantState {
	if st, ok := t.byName[name]; ok {
		return st
	}
	return t.anon
}
