package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"quma/internal/expt"
)

// Config sizes the service.
type Config struct {
	// QueueSize bounds the job queue; a full queue rejects submissions
	// with 429 (default 64).
	QueueSize int
	// Workers is the number of concurrent job executors (default 2).
	// Experiment results never depend on it.
	Workers int
	// JobTimeout bounds one job's execution time, measured from dequeue
	// and checked between experiments (default 5 minutes).
	JobTimeout time.Duration
	// MaxBatch bounds the experiments per job (default 64).
	MaxBatch int
	// MaxRetainedJobs bounds how many terminal (done/failed/canceled)
	// jobs — and their result payloads — stay queryable (default 1024).
	// The oldest finished jobs are evicted first and then 404.
	MaxRetainedJobs int
	// Faults, when non-nil, installs fault-injection hooks on the
	// server's Env (see expt.FaultHooks). Chaos tests only; leave nil in
	// production — a nil hook set is free.
	Faults *expt.FaultHooks
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 1024
	}
	return c
}

// Job states.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// terminal reports whether a status is a job's final state.
func terminal(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCanceled
}

// job is one accepted batch.
type job struct {
	id   string
	reqs []ExperimentRequest
	// ctx is the job's cancellation root: canceled by DELETE
	// /v1/jobs/{id} and by the drain deadline. The per-job execution
	// deadline is layered on top at dequeue time.
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	status    string
	completed int
	results   []json.RawMessage
	errCode   string
	errMsg    string
	done      chan struct{} // closed on terminal state
	subs      []chan progressEvent
}

// progressEvent is one streaming update.
type progressEvent struct {
	Status    string `json:"status"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
	// Code classifies a terminal failure with the stable error taxonomy
	// (canceled, deadline_exceeded, internal); empty while the job is
	// live and for done jobs.
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
}

// snapshot returns the job's current progress under its lock.
func (j *job) snapshot() progressEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	return progressEvent{Status: j.status, Completed: j.completed, Total: len(j.reqs), Code: j.errCode, Error: j.errMsg}
}

// finish moves the job to a terminal state exactly once: later callers
// (a DELETE racing the worker, a worker racing drain) are no-ops. On any
// non-done terminal state the result slots are dropped — a canceled or
// failed job retains no partial results, by contract.
func (j *job) finish(status, code, msg string) bool {
	j.mu.Lock()
	if terminal(j.status) {
		j.mu.Unlock()
		return false
	}
	j.status, j.errCode, j.errMsg = status, code, msg
	if status != StatusDone {
		j.results = nil
	}
	j.mu.Unlock()
	close(j.done)
	j.publish()
	return true
}

// publish updates the job and fans the event out to subscribers. Slow
// subscribers never block a worker: events are dropped on a full channel
// (each subscriber still gets the terminal state from the closing send
// below, because terminal events are delivered with a blocking send
// after the channel is otherwise quiet — see stream handler).
func (j *job) publish() {
	ev := j.snapshot()
	j.mu.Lock()
	subs := append([]chan progressEvent(nil), j.subs...)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Server is the batch experiment service. Create with New, mount
// Handler on an http.Server, and call Drain on shutdown.
type Server struct {
	cfg Config
	env *expt.Env
	mux *http.ServeMux

	mu       sync.Mutex
	draining bool
	queue    chan *job
	jobs     map[string]*job
	// retired lists terminal job ids oldest-first; jobs beyond
	// cfg.MaxRetainedJobs are evicted from the map (bounded memory for
	// a long-lived service).
	retired []string
	nextID  int64
	wg      sync.WaitGroup
}

// New builds a server. The expt.Env — and with it every assembled
// program, pooled machine, and compiled replay schedule — lives for the
// server's lifetime. Call Start to launch the worker pool; until then
// submissions are accepted but only queue.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		env:   expt.NewEnv(),
		mux:   http.NewServeMux(),
		queue: make(chan *job, cfg.QueueSize),
		jobs:  make(map[string]*job),
	}
	if cfg.Faults != nil {
		s.env.SetFaults(cfg.Faults)
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// Start launches the worker pool and returns s.
func (s *Server) Start() *Server {
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for jb := range s.queue {
				s.runJob(jb)
			}
		}()
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops intake (submissions return 503), waits for every queued
// and running job to reach a terminal state, and stops the workers —
// with no deadline: it waits as long as the work takes. Safe to call
// more than once.
func (s *Server) Drain() { s.DrainTimeout(0) }

// DrainTimeout drains like Drain but enforces a hard deadline: if the
// accepted work has not finished within `timeout`, every non-terminal
// job's context is canceled and the cancellation preempts in-flight
// sweeps mid-shot-loop (the jobs end `canceled`, retaining no partial
// results), after which the workers are certain to exit promptly.
// timeout <= 0 means no deadline.
func (s *Server) DrainTimeout(timeout time.Duration) {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	if timeout <= 0 {
		s.wg.Wait()
		return
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.mu.Lock()
		for _, jb := range s.jobs {
			jb.cancel() // idempotent; terminal jobs ignore it
		}
		s.mu.Unlock()
		<-done
	}
}

// apiError is the structured error envelope every non-2xx response
// carries. Code is always one of the taxonomy constants (errors.go) so
// clients branch on a closed set; Reason subdivides it with a stable
// machine-readable slug (e.g. queue_full vs draining, both
// resource_exhausted) when one taxonomy code covers several causes.
type apiError struct {
	Code    string       `json:"code"`
	Reason  string       `json:"reason,omitempty"`
	Message string       `json:"message"`
	Details []FieldError `json:"details,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, e apiError) {
	writeJSON(w, code, struct {
		Error apiError `json:"error"`
	}{Error: e})
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Experiments []ExperimentRequest `json:"experiments"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	// The body bound follows from the documented per-field limits — a
	// full batch of maximal programs fits — plus headroom for JSON
	// escaping and the non-program fields.
	maxBody := int64(s.cfg.MaxBatch)*2*maxProgramBytes + (1 << 20)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, apiError{
				Code:    CodeInvalidArgument,
				Reason:  "body_too_large",
				Message: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
			})
			return
		}
		writeError(w, http.StatusBadRequest, apiError{Code: CodeInvalidArgument, Reason: "malformed_json", Message: err.Error()})
		return
	}
	if len(req.Experiments) == 0 {
		writeError(w, http.StatusBadRequest, apiError{Code: CodeInvalidArgument, Reason: "empty_batch", Message: "a job needs at least one experiment"})
		return
	}
	if len(req.Experiments) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, apiError{
			Code:    CodeInvalidArgument,
			Reason:  "batch_too_large",
			Message: fmt.Sprintf("batch has %d experiments, limit is %d", len(req.Experiments), s.cfg.MaxBatch),
		})
		return
	}
	var details []FieldError
	for i, ex := range req.Experiments {
		details = append(details, ex.Validate(i)...)
	}
	if len(details) > 0 {
		writeError(w, http.StatusBadRequest, apiError{
			Code:    CodeInvalidArgument,
			Reason:  "invalid_fields",
			Message: fmt.Sprintf("%d invalid field(s)", len(details)),
			Details: details,
		})
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, apiError{Code: CodeResourceExhausted, Reason: "draining", Message: "server is draining; resubmit elsewhere"})
		return
	}
	s.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	jb := &job{
		id:      fmt.Sprintf("job-%d", s.nextID),
		reqs:    req.Experiments,
		ctx:     ctx,
		cancel:  cancel,
		status:  StatusQueued,
		results: make([]json.RawMessage, len(req.Experiments)),
		done:    make(chan struct{}),
	}
	select {
	case s.queue <- jb:
		s.jobs[jb.id] = jb
	default:
		s.nextID-- // the id was never exposed; reuse it
		s.mu.Unlock()
		cancel()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, apiError{
			Code:    CodeResourceExhausted,
			Reason:  "queue_full",
			Message: fmt.Sprintf("job queue is full (%d queued); retry later", s.cfg.QueueSize),
		})
		return
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Total  int    `json:"total"`
	}{ID: jb.id, Status: StatusQueued, Total: len(jb.reqs)})
}

// lookup resolves the {id} path segment.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	jb := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if jb == nil {
		writeError(w, http.StatusNotFound, apiError{Code: CodeNotFound, Message: fmt.Sprintf("no job %q", r.PathValue("id"))})
	}
	return jb
}

// handleCancel implements DELETE /v1/jobs/{id}. Cancellation is
// idempotent and state-aware: a queued job goes terminal immediately
// (the worker skips it at dequeue); a running job has its context
// canceled, which preempts the sweep within a bounded number of shots —
// the worker then records the canceled state; a job already terminal is
// left untouched. Every path responds 200 with the job's current
// status, so repeating a DELETE (or racing one against completion) is
// safe and the response tells the client what actually happened.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	jb.cancel()
	// A queued job has no worker to observe the canceled context until
	// dequeue; finish it now so the client sees `canceled` immediately.
	// finish is a no-op if the job is running (the worker owns the
	// transition via the ctx) — except that a running job's sweep is now
	// preempted and the worker will record the same canceled state.
	jb.mu.Lock()
	queued := jb.status == StatusQueued
	jb.mu.Unlock()
	if queued && jb.finish(StatusCanceled, CodeCanceled, "canceled before execution started") {
		s.retire(jb.id)
	}
	ev := jb.snapshot()
	writeJSON(w, http.StatusOK, struct {
		ID string `json:"id"`
		progressEvent
	}{ID: jb.id, progressEvent: ev})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	ev := jb.snapshot()
	writeJSON(w, http.StatusOK, struct {
		ID string `json:"id"`
		progressEvent
	}{ID: jb.id, progressEvent: ev})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	jb.mu.Lock()
	status, errCode, errMsg := jb.status, jb.errCode, jb.errMsg
	results := append([]json.RawMessage(nil), jb.results...)
	jb.mu.Unlock()
	switch status {
	case StatusDone:
		// The body deliberately excludes the job id and any timing:
		// identical requests must produce byte-identical result
		// documents (the service determinism contract).
		writeJSON(w, http.StatusOK, struct {
			Results []json.RawMessage `json:"results"`
		}{Results: results})
	case StatusFailed, StatusCanceled:
		// No result body ever leaves a failed or canceled job — the error
		// envelope carries the job's terminal taxonomy code instead.
		writeError(w, http.StatusConflict, apiError{Code: errCode, Reason: "job_" + status, Message: errMsg})
	default:
		writeError(w, http.StatusConflict, apiError{
			Code:    CodeFailedPrecondition,
			Reason:  "not_finished",
			Message: fmt.Sprintf("job is %s; poll status or stream until done", status),
		})
	}
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, apiError{Code: CodeInternal, Reason: "no_streaming", Message: "response writer cannot stream"})
		return
	}
	ch := make(chan progressEvent, 16)
	jb.mu.Lock()
	jb.subs = append(jb.subs, ch)
	jb.mu.Unlock()
	defer func() {
		jb.mu.Lock()
		for i, c := range jb.subs {
			if c == ch {
				jb.subs = append(jb.subs[:i], jb.subs[i+1:]...)
				break
			}
		}
		jb.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	send := func(ev progressEvent) bool {
		data, _ := json.Marshal(ev)
		fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data)
		fl.Flush()
		return terminal(ev.Status)
	}
	// Current state first, so late subscribers see something immediately
	// (and finished jobs terminate the stream at once).
	if send(jb.snapshot()) {
		return
	}
	for {
		select {
		case ev := <-ch:
			if send(ev) {
				return
			}
		case <-jb.done:
			// Drain anything buffered, then emit the terminal snapshot.
			for {
				select {
				case ev := <-ch:
					if send(ev) {
						return
					}
				default:
					send(jb.snapshot())
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	njobs := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
		Queued   int  `json:"queued"`
		Jobs     int  `json:"jobs"`
	}{OK: true, Draining: draining, Queued: len(s.queue), Jobs: njobs})
}

// runJob executes one dequeued job to a terminal state. The execution
// context layers the job deadline (Config.JobTimeout, measured from
// dequeue) on the job's cancellation root, so one ctx carries both
// DELETE/drain cancellation and the timeout down through the expt layer
// into the replay shot loop — either preempts a sweep within a bounded
// number of shots. Terminal classification rides the error: a wrapped
// context.Canceled ends the job `canceled`, context.DeadlineExceeded
// ends it failed with code `deadline_exceeded`, anything else — fit
// errors, injected faults, recovered worker panics — failed with code
// `internal`.
func (s *Server) runJob(jb *job) {
	// A job canceled while still queued never starts. (handleCancel
	// usually records this itself; this path wins the race where cancel
	// and dequeue interleave.)
	if jb.ctx.Err() != nil {
		if jb.finish(StatusCanceled, CodeCanceled, "canceled before execution started") {
			s.retire(jb.id)
		}
		return
	}
	ctx, cancel := context.WithTimeout(jb.ctx, s.cfg.JobTimeout)
	defer cancel()

	jb.mu.Lock()
	if terminal(jb.status) {
		// A DELETE finished the job between dequeue and here.
		jb.mu.Unlock()
		return
	}
	jb.status = StatusRunning
	jb.mu.Unlock()
	jb.publish()

	for i, req := range jb.reqs {
		res, err := Execute(ctx, s.env, req)
		if err != nil {
			code := classifyErr(err)
			status := StatusFailed
			if code == CodeCanceled {
				status = StatusCanceled
			}
			if jb.finish(status, code, jobErrorMessage(i, req.Type, err)) {
				s.retire(jb.id)
			}
			return
		}
		jb.mu.Lock()
		if terminal(jb.status) {
			// A DELETE landed after the experiment's last context check;
			// the job is already canceled and retains no results — this
			// one is dropped too, honoring the no-partial-results contract.
			jb.mu.Unlock()
			return
		}
		jb.results[i] = res
		jb.completed = i + 1
		jb.mu.Unlock()
		jb.publish()
	}
	if jb.finish(StatusDone, "", "") {
		s.retire(jb.id)
	}
}

// retire records a terminal job and evicts the oldest finished jobs
// beyond the retention bound, so a long-lived server's result store
// stays finite.
func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retired = append(s.retired, id)
	for len(s.retired) > s.cfg.MaxRetainedJobs {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
}
