package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quma/internal/expt"
	"quma/internal/journal"
)

// Config sizes the service.
type Config struct {
	// QueueSize bounds the job queue; a full queue rejects submissions
	// with 429 (default 64).
	QueueSize int
	// Workers is the number of concurrent job executors (default 2).
	// Experiment results never depend on it.
	Workers int
	// JobTimeout bounds one job's execution time, measured from dequeue
	// and checked between experiments (default 5 minutes).
	JobTimeout time.Duration
	// MaxBatch bounds the experiments per job (default 64).
	MaxBatch int
	// MaxRetainedJobs bounds how many terminal (done/failed/canceled)
	// jobs — and their result payloads — stay queryable (default 1024).
	// The oldest finished jobs are evicted first and then 404.
	MaxRetainedJobs int
	// CacheSize bounds the content-addressed result cache: repeat
	// submissions of a canonically identical batch are answered
	// terminal-immediately with the original retained job instead of
	// re-executing. 0 selects the default (256 entries); negative
	// disables the cache.
	CacheSize int
	// Tenants declares the API-key tenants (see TenantConfig). Empty
	// leaves the server anonymous-only — every request is admitted as
	// the unlimited, batch-class anonymous tenant, exactly the
	// pre-tenancy behavior. Invalid tenant configuration panics in New;
	// cmd/quma-serve validates via LoadAPIKeys first.
	Tenants []TenantConfig
	// Faults, when non-nil, installs fault-injection hooks on the
	// server's Env (see expt.FaultHooks). Chaos tests only; leave nil in
	// production — a nil hook set is free.
	Faults *expt.FaultHooks
	// Journal, when non-nil, makes accepted jobs durable: every state
	// transition is appended (and fsync'd) to the write-ahead log before
	// it is acknowledged, and New replays the log — restoring terminal
	// jobs byte-for-byte and re-enqueueing every non-terminal job for
	// deterministic re-execution under its original ID, in its original
	// submit order. The caller owns the journal's lifetime (open before
	// New, close after Drain). Durability never perturbs result bytes:
	// the journal sits entirely outside the execution path.
	Journal *journal.Journal
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 1024
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	return c
}

// Job states.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// terminal reports whether a status is a job's final state.
func terminal(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCanceled
}

// job is one accepted batch.
type job struct {
	id   string
	reqs []ExperimentRequest
	// idemKey/reqHash are the idempotency identity: the client's
	// Idempotency-Key header (if any) and the hash of the canonicalized
	// request, journaled with the accepted record so resubmissions
	// dedupe across restarts.
	idemKey string
	reqHash string
	// tenant/class are the admission identity: the journaled tenant name
	// (empty = anonymous) and the fair-queue priority class. tenantSt is
	// the live quota accounting, charged at submit and released exactly
	// once at retire (both under Server.mu); nil when no quota was
	// charged (recovered terminal jobs).
	tenant   string
	class    string
	tenantSt *tenantState
	// ctx is the job's cancellation root: canceled by DELETE
	// /v1/jobs/{id} and by the drain deadline. The per-job execution
	// deadline is layered on top at dequeue time.
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	status    string
	completed int
	results   []json.RawMessage
	errCode   string
	errMsg    string
	done      chan struct{} // closed on terminal state
	// events is the job's full progress history, ids 1..n — the SSE
	// reconnect backlog. Bounded: one event per state transition plus one
	// per completed experiment, so at most len(reqs)+3.
	events []numberedEvent
	subs   []chan numberedEvent
}

// progressEvent is one streaming update.
type progressEvent struct {
	Status    string `json:"status"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
	// Code classifies a terminal failure with the stable error taxonomy
	// (canceled, deadline_exceeded, internal); empty while the job is
	// live and for done jobs.
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
}

// numberedEvent is a progressEvent with its per-job SSE id. Ids are
// monotonic within one server incarnation; after a crash recovery the
// history restarts (clients reconnecting with a stale Last-Event-ID
// still receive the terminal state — see handleStream).
type numberedEvent struct {
	ID int
	progressEvent
}

// snapshotLocked builds the current progress event; callers hold j.mu.
func (j *job) snapshotLocked() progressEvent {
	return progressEvent{Status: j.status, Completed: j.completed, Total: len(j.reqs), Code: j.errCode, Error: j.errMsg}
}

// snapshot returns the job's current progress under its lock.
func (j *job) snapshot() progressEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

// finish moves the job to a terminal state exactly once: later callers
// (a DELETE racing the worker, a worker racing drain) are no-ops. On any
// non-done terminal state the result slots are dropped — a canceled or
// failed job retains no partial results, by contract.
func (j *job) finish(status, code, msg string) bool {
	j.mu.Lock()
	if terminal(j.status) {
		j.mu.Unlock()
		return false
	}
	j.status, j.errCode, j.errMsg = status, code, msg
	if status != StatusDone {
		j.results = nil
	}
	j.mu.Unlock()
	close(j.done)
	j.publish()
	return true
}

// publish appends the job's current state to its event history under
// the next id and fans it out to subscribers. Slow subscribers never
// block a worker: events are dropped on a full channel — the history
// replay and the terminal-snapshot fallback in the stream handler
// guarantee no subscriber misses the terminal state.
func (j *job) publish() {
	j.mu.Lock()
	ne := numberedEvent{ID: len(j.events) + 1, progressEvent: j.snapshotLocked()}
	j.events = append(j.events, ne)
	subs := append([]chan numberedEvent(nil), j.subs...)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ne:
		default:
		}
	}
}

// Server is the batch experiment service. Create with New, mount
// Handler on an http.Server, and call Drain on shutdown.
type Server struct {
	cfg Config
	env *expt.Env
	mux *http.ServeMux
	jr  *journal.Journal
	// queue is the fair job queue: per-class FIFO lanes under
	// deterministic stride scheduling (queue.go). Push never blocks;
	// admission control happens in handleSubmit under s.mu.
	queue *fairQueue
	// tenants resolves API keys to quota/class state (tenant.go). The
	// table is immutable after New; the per-tenant counters it holds are
	// guarded by s.mu.
	tenants *tenantTable
	// avgJobNanos is an EWMA of completed-job execution time, feeding the
	// derived Retry-After hints. Timing only ever reaches response
	// headers, never result bytes.
	avgJobNanos atomic.Int64

	mu       sync.Mutex
	draining bool
	// cache is the content-addressed result index (cache.go), guarded by
	// s.mu; nil when disabled.
	cache *resultCache
	jobs  map[string]*job
	// idem maps Idempotency-Key → job id for every retained job that was
	// submitted with a key; entries die with their job's eviction.
	// Rebuilt from the journal at recovery.
	idem map[string]string
	// retired lists terminal job ids oldest-first; jobs beyond
	// cfg.MaxRetainedJobs are evicted from the map (bounded memory for
	// a long-lived service).
	retired []string
	nextID  int64
	wg      sync.WaitGroup
	// recovered/reenqueued count what journal replay restored, for
	// /healthz observability.
	recovered  int
	reenqueued int
}

// New builds a server. The expt.Env — and with it every assembled
// program, pooled machine, and compiled replay schedule — lives for the
// server's lifetime. Call Start to launch the worker pool; until then
// submissions are accepted but only queue.
//
// With Config.Journal set, New replays the journal before serving:
// terminal jobs come back queryable with their exact result bytes, and
// every job that was accepted but not terminal at the crash is
// re-enqueued — original ID, original submit order — for deterministic
// re-execution (the queue is sized up if the backlog exceeds
// QueueSize, so recovery never drops accepted work).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	tenants, err := newTenantTable(cfg.Tenants)
	if err != nil {
		// Static misconfiguration, caught at construction — the server
		// must not come up silently dropping a tenant's key or quota.
		panic(fmt.Sprintf("service: invalid tenant config: %v", err))
	}
	s := &Server{
		cfg:     cfg,
		env:     expt.NewEnv(),
		mux:     http.NewServeMux(),
		jr:      cfg.Journal,
		queue:   newFairQueue(),
		tenants: tenants,
		cache:   newResultCache(cfg.CacheSize),
		jobs:    make(map[string]*job),
		idem:    make(map[string]string),
	}
	s.avgJobNanos.Store(int64(time.Second)) // neutral prior until jobs complete
	if cfg.Faults != nil {
		s.env.SetFaults(cfg.Faults)
	}
	for _, jb := range s.recoverFromJournal() {
		s.queue.push(jb)
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// recoverFromJournal rebuilds the job table from the replayed journal
// and returns the non-terminal jobs to re-enqueue, in submit order.
// Called from New before the server is visible to any request, so no
// locking is needed.
func (s *Server) recoverFromJournal() []*job {
	if s.jr == nil {
		return nil
	}
	var pending []*job
	for _, st := range s.jr.States() {
		if n, ok := strings.CutPrefix(st.ID, "job-"); ok {
			if v, err := strconv.ParseInt(n, 10, 64); err == nil && v > s.nextID {
				s.nextID = v
			}
		}
		jb := &job{id: st.ID, idemKey: st.Key, reqHash: st.ReqHash, tenant: st.Tenant, done: make(chan struct{})}
		jb.ctx, jb.cancel = context.WithCancel(context.Background())
		terminalState := st.Terminal()
		if terminalState && st.Status == journal.TypeDone {
			// Integrity check: result bytes must match their journaled
			// hash; a mismatch demotes the record to non-terminal and the
			// job re-executes (determinism reproduces the true bytes).
			if hashBytes(st.Results) != st.ResultHash {
				terminalState = false
			}
		}
		if terminalState {
			var results []json.RawMessage
			if st.Status == journal.TypeDone {
				if err := json.Unmarshal(st.Results, &results); err != nil {
					// Undecodable results: re-execute instead.
					terminalState = false
				}
			}
			if terminalState {
				jb.status = st.Status // journal terminal types match service statuses
				jb.errCode, jb.errMsg = st.Code, st.Error
				jb.results = results
				jb.completed = len(results)
				close(jb.done)
				jb.events = []numberedEvent{{ID: 1, progressEvent: jb.snapshotLocked()}}
				s.jobs[jb.id] = jb
				if st.Key != "" {
					s.idem[st.Key] = jb.id
				}
				if st.Status == journal.TypeDone && s.cache != nil && jb.reqHash != "" {
					// Rebuild the content-addressed index: recovered results
					// are journal-verified bytes, so a post-restart resubmit
					// hits the cache exactly as it would have pre-crash.
					// States() is Seq-ordered, so recency matches submit order.
					s.cache.insert(jb.reqHash, jb.id)
				}
				s.retired = append(s.retired, jb.id)
				s.recovered++
				continue
			}
		}
		// Non-terminal (or demoted): decode the canonical request and
		// re-enqueue for re-execution.
		var reqs []ExperimentRequest
		if err := json.Unmarshal(st.Request, &reqs); err != nil || len(reqs) == 0 {
			// A journaled request that no longer decodes cannot re-execute;
			// surface it as a failed job rather than dropping it silently.
			jb.status = StatusFailed
			jb.errCode = CodeInternal
			jb.errMsg = fmt.Sprintf("journal recovery: request undecodable: %v", err)
			close(jb.done)
			jb.events = []numberedEvent{{ID: 1, progressEvent: jb.snapshotLocked()}}
			s.jobs[jb.id] = jb
			s.retired = append(s.retired, jb.id)
			s.journalAppend(journal.Failed(jb.id, jb.errCode, jb.errMsg))
			s.recovered++
			continue
		}
		jb.status = StatusQueued
		jb.reqs = reqs
		jb.results = make([]json.RawMessage, len(reqs))
		// Restore the tenant's admission accounting: a re-enqueued job
		// occupies its quota exactly as it did before the crash. A tenant
		// name the current key file no longer declares resolves to
		// anonymous (unlimited) — accepted work is never dropped.
		jb.tenantSt = s.tenants.resolve(st.Tenant)
		jb.class = jb.tenantSt.class
		jb.tenantSt.acquire(len(reqs))
		jb.events = []numberedEvent{{ID: 1, progressEvent: jb.snapshotLocked()}}
		s.jobs[jb.id] = jb
		if st.Key != "" {
			s.idem[st.Key] = jb.id
		}
		pending = append(pending, jb)
		s.recovered++
		s.reenqueued++
	}
	// Recovered terminal jobs participate in the retention bound exactly
	// like live ones: trim the oldest beyond the cap now, journaling the
	// evictions so the next restart does not resurrect them.
	s.trimRetiredLocked()
	return pending
}

// hashBytes is the journal integrity/idempotency hash: hex SHA-256.
func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// journalAppend appends best-effort: transitions after acceptance
// (running, terminal, evicted) tolerate a journal write failure — the
// in-memory job proceeds, and if the process dies before a later append
// lands, recovery simply re-executes the job (at-least-once execution
// with exactly-once-observable results, by determinism). Only the
// accepted record is load-bearing and its failure rejects the submit.
func (s *Server) journalAppend(rec journal.Record) {
	if s.jr == nil {
		return
	}
	s.jr.Append(rec)
}

// Start launches the worker pool and returns s.
func (s *Server) Start() *Server {
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				jb, ok := s.queue.pop()
				if !ok {
					return
				}
				s.runJob(jb)
			}
		}()
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops intake (submissions return 503), waits for every queued
// and running job to reach a terminal state, and stops the workers —
// with no deadline: it waits as long as the work takes. Safe to call
// more than once.
func (s *Server) Drain() { s.DrainTimeout(0) }

// DrainTimeout drains like Drain but enforces a hard deadline: if the
// accepted work has not finished within `timeout`, every non-terminal
// job's context is canceled and the cancellation preempts in-flight
// sweeps mid-shot-loop (the jobs end `canceled`, retaining no partial
// results), after which the workers are certain to exit promptly.
// timeout <= 0 means no deadline.
func (s *Server) DrainTimeout(timeout time.Duration) {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.queue.close()
	}
	s.mu.Unlock()
	if timeout <= 0 {
		s.wg.Wait()
		return
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.mu.Lock()
		for _, jb := range s.jobs {
			jb.cancel() // idempotent; terminal jobs ignore it
		}
		s.mu.Unlock()
		<-done
	}
}

// apiError is the structured error envelope every non-2xx response
// carries. Code is always one of the taxonomy constants (errors.go) so
// clients branch on a closed set; Reason subdivides it with a stable
// machine-readable slug (e.g. queue_full vs draining, both
// resource_exhausted) when one taxonomy code covers several causes.
type apiError struct {
	Code    string       `json:"code"`
	Reason  string       `json:"reason,omitempty"`
	Message string       `json:"message"`
	Details []FieldError `json:"details,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, e apiError) {
	writeJSON(w, code, struct {
		Error apiError `json:"error"`
	}{Error: e})
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Experiments []ExperimentRequest `json:"experiments"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	// The body bound follows from the documented per-field limits — a
	// full batch of maximal programs fits — plus headroom for JSON
	// escaping and the non-program fields.
	maxBody := int64(s.cfg.MaxBatch)*2*maxProgramBytes + (1 << 20)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, apiError{
				Code:    CodeInvalidArgument,
				Reason:  "body_too_large",
				Message: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
			})
			return
		}
		writeError(w, http.StatusBadRequest, apiError{Code: CodeInvalidArgument, Reason: "malformed_json", Message: err.Error()})
		return
	}
	if len(req.Experiments) == 0 {
		writeError(w, http.StatusBadRequest, apiError{Code: CodeInvalidArgument, Reason: "empty_batch", Message: "a job needs at least one experiment"})
		return
	}
	if len(req.Experiments) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, apiError{
			Code:    CodeInvalidArgument,
			Reason:  "batch_too_large",
			Message: fmt.Sprintf("batch has %d experiments, limit is %d", len(req.Experiments), s.cfg.MaxBatch),
		})
		return
	}
	var details []FieldError
	for i, ex := range req.Experiments {
		details = append(details, ex.Validate(i)...)
	}
	if len(details) > 0 {
		writeError(w, http.StatusBadRequest, apiError{
			Code:    CodeInvalidArgument,
			Reason:  "invalid_fields",
			Message: fmt.Sprintf("%d invalid field(s)", len(details)),
			Details: details,
		})
		return
	}

	// Canonical request bytes: the experiments array with its
	// result-neutral fields scrubbed, re-marshaled from the decoded
	// structs — field order and formatting are fixed by the struct, so
	// byte-equal canonical forms mean requests with identical results by
	// construction (see canonicalExperiments). These bytes are what the
	// journal re-executes at recovery and what the idempotency and
	// result-cache hashes cover.
	canonical, err := canonicalExperiments(req.Experiments)
	if err != nil {
		writeError(w, http.StatusBadRequest, apiError{Code: CodeInvalidArgument, Reason: "malformed_json", Message: err.Error()})
		return
	}
	reqHash := hashBytes(canonical)
	idemKey := r.Header.Get("Idempotency-Key")
	tenant, aerr := s.tenants.authenticate(r)
	if aerr != nil {
		writeError(w, http.StatusUnauthorized, *aerr)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, apiError{Code: CodeResourceExhausted, Reason: "draining", Message: "server is draining; resubmit elsewhere"})
		return
	}
	if idemKey != "" {
		if id, ok := s.idem[idemKey]; ok {
			if jb := s.jobs[id]; jb != nil {
				if jb.reqHash != reqHash {
					s.mu.Unlock()
					writeError(w, http.StatusConflict, apiError{
						Code:    CodeFailedPrecondition,
						Reason:  "idempotency_key_mismatch",
						Message: fmt.Sprintf("Idempotency-Key %q was already used for a different request", idemKey),
					})
					return
				}
				s.mu.Unlock()
				// Replay: 200 (not 202) with the original job — the client
				// polls the same id whether or not its first submission's
				// response was lost to a crash or a dropped connection.
				writeJSON(w, http.StatusOK, struct {
					ID string `json:"id"`
					progressEvent
				}{ID: jb.id, progressEvent: jb.snapshot()})
				return
			}
			// The job the key pointed at was evicted; treat as new.
			delete(s.idem, idemKey)
		}
	}
	// Content-addressed result cache: an unkeyed resubmission of a
	// canonically identical batch is answered terminal-immediately with
	// the original retained job — no machine, no queue slot, no quota
	// charge. The response is byte-identical to cold execution by
	// construction: it references the single result document that exists
	// for this canonical form. Keyed submissions bypass the cache so the
	// idempotency contract (per-key 409 on mismatch, journaled dedup
	// across restarts) keeps its own, stricter path.
	if idemKey == "" && s.cache != nil {
		if id, ok := s.cache.lookup(reqHash); ok {
			if jb := s.jobs[id]; jb != nil {
				s.mu.Unlock()
				w.Header().Set("Cache-Status", "quma-result-cache; hit")
				writeJSON(w, http.StatusOK, struct {
					ID    string `json:"id"`
					Cache string `json:"cache"`
					progressEvent
				}{ID: jb.id, Cache: "hit", progressEvent: jb.snapshot()})
				return
			}
		}
	}
	// Admission control, tenant quota first: a tenant at its bound is
	// told to back off proportionally to its own backlog, and never
	// consumes shared queue capacity.
	if msg, ok := tenant.admit(len(req.Experiments)); !ok {
		retry := s.retryAfterHint(tenant.activeJobs)
		s.mu.Unlock()
		w.Header().Set("Retry-After", retry)
		writeError(w, http.StatusTooManyRequests, apiError{
			Code:    CodeResourceExhausted,
			Reason:  "tenant_quota",
			Message: msg,
		})
		return
	}
	// Queue bound: push below never blocks (fairQueue is unbounded), so
	// this check under s.mu is the whole admission decision.
	if depth := s.queue.depth(); depth >= s.cfg.QueueSize {
		retry := s.retryAfterHint(depth)
		s.mu.Unlock()
		w.Header().Set("Retry-After", retry)
		writeError(w, http.StatusTooManyRequests, apiError{
			Code:    CodeResourceExhausted,
			Reason:  "queue_full",
			Message: fmt.Sprintf("job queue is full (%d queued); retry later", s.cfg.QueueSize),
		})
		return
	}
	tenantName := ""
	if tenant.name != AnonymousTenant {
		tenantName = tenant.name
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	if s.jr != nil {
		// The accepted record is the durability point: it must be on disk
		// before the id is exposed, so a crash after this response can
		// never lose the job. A failed append rejects the submission —
		// accepting work the journal cannot remember would silently void
		// the crash-safety contract.
		rec := journal.Accepted(id, idemKey, reqHash, canonical)
		rec.Tenant = tenantName
		if err := s.jr.Append(rec); err != nil {
			s.nextID-- // the id was never exposed; reuse it
			s.mu.Unlock()
			writeError(w, http.StatusInternalServerError, apiError{
				Code:    CodeInternal,
				Reason:  "journal_append_failed",
				Message: fmt.Sprintf("could not journal the job: %v", err),
			})
			return
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	jb := &job{
		id:       id,
		reqs:     req.Experiments,
		idemKey:  idemKey,
		reqHash:  reqHash,
		tenant:   tenantName,
		class:    tenant.class,
		tenantSt: tenant,
		ctx:      ctx,
		cancel:   cancel,
		status:   StatusQueued,
		results:  make([]json.RawMessage, len(req.Experiments)),
		done:     make(chan struct{}),
	}
	tenant.acquire(len(req.Experiments))
	jb.events = []numberedEvent{{ID: 1, progressEvent: jb.snapshotLocked()}}
	s.queue.push(jb)
	s.jobs[jb.id] = jb
	if idemKey != "" {
		s.idem[idemKey] = jb.id
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Total  int    `json:"total"`
	}{ID: jb.id, Status: StatusQueued, Total: len(jb.reqs)})
}

// retryAfterHint derives a Retry-After value (whole seconds, the HTTP
// delta-seconds form) from the work ahead: `pending` jobs at the EWMA
// job duration spread over the worker pool, rounded up and clamped to
// [1, 30] so clients always back off at least a second and a cold or
// pathological estimate never tells them to vanish for minutes. Timing
// influences headers only — never result bytes.
func (s *Server) retryAfterHint(pending int) string {
	avg := time.Duration(s.avgJobNanos.Load())
	est := time.Duration(pending) * avg / time.Duration(s.cfg.Workers)
	secs := int64((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.FormatInt(secs, 10)
}

// observeJobDuration folds one completed job's wall time into the EWMA
// behind retryAfterHint (new = old + (sample-old)/8).
func (s *Server) observeJobDuration(d time.Duration) {
	for {
		old := s.avgJobNanos.Load()
		next := old + (int64(d)-old)/8
		if s.avgJobNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// lookup resolves the {id} path segment.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	jb := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if jb == nil {
		writeError(w, http.StatusNotFound, apiError{Code: CodeNotFound, Message: fmt.Sprintf("no job %q", r.PathValue("id"))})
	}
	return jb
}

// handleCancel implements DELETE /v1/jobs/{id}. Cancellation is
// idempotent and state-aware: a queued job goes terminal immediately
// (the worker skips it at dequeue); a running job has its context
// canceled, which preempts the sweep within a bounded number of shots —
// the worker then records the canceled state; a job already terminal is
// left untouched. Every path responds 200 with the job's current
// status, so repeating a DELETE (or racing one against completion) is
// safe and the response tells the client what actually happened.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	jb.cancel()
	// A queued job has no worker to observe the canceled context until
	// dequeue; finish it now so the client sees `canceled` immediately.
	// finish is a no-op if the job is running (the worker owns the
	// transition via the ctx) — except that a running job's sweep is now
	// preempted and the worker will record the same canceled state.
	jb.mu.Lock()
	queued := jb.status == StatusQueued
	jb.mu.Unlock()
	if queued {
		s.finishJob(jb, StatusCanceled, CodeCanceled, "canceled before execution started")
	}
	ev := jb.snapshot()
	writeJSON(w, http.StatusOK, struct {
		ID string `json:"id"`
		progressEvent
	}{ID: jb.id, progressEvent: ev})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	ev := jb.snapshot()
	writeJSON(w, http.StatusOK, struct {
		ID string `json:"id"`
		progressEvent
	}{ID: jb.id, progressEvent: ev})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	jb.mu.Lock()
	status, errCode, errMsg := jb.status, jb.errCode, jb.errMsg
	results := append([]json.RawMessage(nil), jb.results...)
	jb.mu.Unlock()
	switch status {
	case StatusDone:
		// The body deliberately excludes the job id and any timing:
		// identical requests must produce byte-identical result
		// documents (the service determinism contract).
		writeJSON(w, http.StatusOK, struct {
			Results []json.RawMessage `json:"results"`
		}{Results: results})
	case StatusFailed, StatusCanceled:
		// No result body ever leaves a failed or canceled job — the error
		// envelope carries the job's terminal taxonomy code instead.
		writeError(w, http.StatusConflict, apiError{Code: errCode, Reason: "job_" + status, Message: errMsg})
	default:
		writeError(w, http.StatusConflict, apiError{
			Code:    CodeFailedPrecondition,
			Reason:  "not_finished",
			Message: fmt.Sprintf("job is %s; poll status or stream until done", status),
		})
	}
}

// handleStream serves the SSE progress stream (mounted at both /stream
// and /progress). Every event carries a monotonically numbered per-job
// id; a client that reconnects with the standard Last-Event-ID header
// resumes from the event after it — the job's full history is retained
// (it is bounded by the batch size), so a dropped connection never
// loses an event, and in particular never the terminal one. After a
// server restart the history restarts from the recovered state; a
// reconnect carrying a stale (larger) Last-Event-ID skips the replayed
// backlog but is still guaranteed the terminal event, with an id above
// the client's — resumption degrades to "terminal state only", never to
// a hang or a miss.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, apiError{Code: CodeInternal, Reason: "no_streaming", Message: "response writer cannot stream"})
		return
	}
	sent := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			sent = n
		}
	}
	ch := make(chan numberedEvent, 16)
	jb.mu.Lock()
	// Backlog and subscription under one critical section: every event
	// published after this point reaches ch, every one before is in the
	// backlog, and the id-dedupe in send covers the overlap.
	backlog := make([]numberedEvent, 0, len(jb.events))
	for _, ne := range jb.events {
		if ne.ID > sent {
			backlog = append(backlog, ne)
		}
	}
	jb.subs = append(jb.subs, ch)
	jb.mu.Unlock()
	defer func() {
		jb.mu.Lock()
		for i, c := range jb.subs {
			if c == ch {
				jb.subs = append(jb.subs[:i], jb.subs[i+1:]...)
				break
			}
		}
		jb.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	send := func(ne numberedEvent) bool {
		if ne.ID <= sent {
			return false
		}
		sent = ne.ID
		data, _ := json.Marshal(ne.progressEvent)
		fmt.Fprintf(w, "id: %d\nevent: progress\ndata: %s\n\n", ne.ID, data)
		fl.Flush()
		return terminal(ne.Status)
	}
	for _, ne := range backlog {
		if send(ne) {
			return
		}
	}
	for {
		select {
		case ne := <-ch:
			if send(ne) {
				return
			}
		case <-jb.done:
			// The terminal state is set (finish closes done after setting
			// it) but its published event may still be in flight or may
			// have been dropped from a full channel: drain what is
			// buffered, then emit a terminal snapshot under the next id.
			for {
				select {
				case ne := <-ch:
					if send(ne) {
						return
					}
				default:
					jb.mu.Lock()
					ne := numberedEvent{ID: len(jb.events), progressEvent: jb.snapshotLocked()}
					jb.mu.Unlock()
					if ne.ID <= sent {
						ne.ID = sent + 1
					}
					send(ne)
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// healthJournal is the /healthz durability block, present only when the
// server runs with a journal.
type healthJournal struct {
	// RecoveredJobs is how many jobs the startup replay restored
	// (terminal and re-enqueued combined); Reenqueued of them were
	// non-terminal and re-executed.
	RecoveredJobs int `json:"recovered_jobs"`
	Reenqueued    int `json:"reenqueued"`
	// TruncatedBytes/DroppedSegments report the torn-tail repair, if any.
	TruncatedBytes  int64 `json:"truncated_bytes"`
	DroppedSegments int   `json:"dropped_segments"`
}

// healthQueue is the /healthz fair-queue block: total depth plus the
// per-class lane depths.
type healthQueue struct {
	Interactive int `json:"interactive"`
	Batch       int `json:"batch"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	njobs := len(s.jobs)
	var hc *cacheStats
	if s.cache != nil {
		hc = s.cache.stats()
	}
	var hj *healthJournal
	if s.jr != nil {
		st := s.jr.Stats()
		hj = &healthJournal{
			RecoveredJobs:   s.recovered,
			Reenqueued:      s.reenqueued,
			TruncatedBytes:  st.TruncatedBytes,
			DroppedSegments: st.DroppedSegments,
		}
	}
	s.mu.Unlock()
	qi, qb := s.queue.depthByClass()
	writeJSON(w, http.StatusOK, struct {
		OK       bool           `json:"ok"`
		Draining bool           `json:"draining"`
		Queued   int            `json:"queued"`
		Classes  healthQueue    `json:"classes"`
		Jobs     int            `json:"jobs"`
		Cache    *cacheStats    `json:"cache,omitempty"`
		Journal  *healthJournal `json:"journal,omitempty"`
	}{OK: true, Draining: draining, Queued: qi + qb, Classes: healthQueue{Interactive: qi, Batch: qb}, Jobs: njobs, Cache: hc, Journal: hj})
}

// runJob executes one dequeued job to a terminal state. The execution
// context layers the job deadline (Config.JobTimeout, measured from
// dequeue) on the job's cancellation root, so one ctx carries both
// DELETE/drain cancellation and the timeout down through the expt layer
// into the replay shot loop — either preempts a sweep within a bounded
// number of shots. Terminal classification rides the error: a wrapped
// context.Canceled ends the job `canceled`, context.DeadlineExceeded
// ends it failed with code `deadline_exceeded`, anything else — fit
// errors, injected faults, recovered worker panics — failed with code
// `internal`.
func (s *Server) runJob(jb *job) {
	// A job canceled while still queued never starts. (handleCancel
	// usually records this itself; this path wins the race where cancel
	// and dequeue interleave.)
	if jb.ctx.Err() != nil {
		s.finishJob(jb, StatusCanceled, CodeCanceled, "canceled before execution started")
		return
	}
	ctx, cancel := context.WithTimeout(jb.ctx, s.cfg.JobTimeout)
	defer cancel()

	jb.mu.Lock()
	if terminal(jb.status) {
		// A DELETE finished the job between dequeue and here.
		jb.mu.Unlock()
		return
	}
	jb.status = StatusRunning
	jb.mu.Unlock()
	jb.publish()
	s.journalAppend(journal.Running(jb.id))

	start := time.Now()
	for i, req := range jb.reqs {
		res, err := Execute(ctx, s.env, req)
		if err != nil {
			code := classifyErr(err)
			status := StatusFailed
			if code == CodeCanceled {
				status = StatusCanceled
			}
			s.finishJob(jb, status, code, jobErrorMessage(i, req.Type, err))
			return
		}
		jb.mu.Lock()
		if terminal(jb.status) {
			// A DELETE landed after the experiment's last context check;
			// the job is already canceled and retains no results — this
			// one is dropped too, honoring the no-partial-results contract.
			jb.mu.Unlock()
			return
		}
		jb.results[i] = res
		jb.completed = i + 1
		jb.mu.Unlock()
		jb.publish()
	}
	s.finishJob(jb, StatusDone, "", "")
	// Completed executions feed the Retry-After estimator; aborted ones
	// would bias it toward zero.
	s.observeJobDuration(time.Since(start))
}

// finishJob is the single terminal-transition point: move the job to a
// terminal state (exactly once), journal the transition, and retire it
// into the retention window. The journal append is best-effort and
// happens after the in-memory transition — if the process dies in
// between, recovery re-executes the job and determinism reproduces the
// identical bytes.
func (s *Server) finishJob(jb *job, status, code, msg string) {
	if !jb.finish(status, code, msg) {
		return
	}
	if s.jr != nil {
		switch status {
		case StatusDone:
			jb.mu.Lock()
			results, err := json.Marshal(jb.results)
			jb.mu.Unlock()
			if err == nil {
				s.journalAppend(journal.Done(jb.id, hashBytes(results), results))
			}
		case StatusCanceled:
			s.journalAppend(journal.Canceled(jb.id, code, msg))
		default:
			s.journalAppend(journal.Failed(jb.id, code, msg))
		}
	}
	s.retire(jb)
}

// retire records a terminal job and evicts the oldest finished jobs
// beyond the retention bound, so a long-lived server's result store
// stays finite. Evictions are journaled (tombstones compacted away at
// the next rotation), so the bound holds across restarts too. Retire is
// also where the job's admission charge is settled: the tenant quota is
// released exactly once, and a completed job is indexed into the
// content-addressed cache (a failed or canceled one is not — only done
// jobs carry the canonical result document).
func (s *Server) retire(jb *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if jb.tenantSt != nil {
		jb.tenantSt.release(len(jb.reqs))
		jb.tenantSt = nil
	}
	if s.cache != nil && jb.reqHash != "" && jb.snapshot().Status == StatusDone {
		s.cache.insert(jb.reqHash, jb.id)
	}
	s.retired = append(s.retired, jb.id)
	s.trimRetiredLocked()
}

// trimRetiredLocked evicts beyond the retention bound; callers hold
// s.mu (or, during recovery, exclusive access). Eviction invalidates
// the job's cache entry in the same critical section — the cache is an
// index over the retention window and must never point at a 404.
func (s *Server) trimRetiredLocked() {
	for len(s.retired) > s.cfg.MaxRetainedJobs {
		id := s.retired[0]
		s.retired = s.retired[1:]
		if jb := s.jobs[id]; jb != nil {
			if jb.idemKey != "" && s.idem[jb.idemKey] == id {
				delete(s.idem, jb.idemKey)
			}
			if s.cache != nil && jb.reqHash != "" {
				s.cache.invalidate(jb.reqHash, id)
			}
		}
		delete(s.jobs, id)
		s.journalAppend(journal.Evicted(id))
	}
}
