package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"quma/internal/expt"
)

// Config sizes the service.
type Config struct {
	// QueueSize bounds the job queue; a full queue rejects submissions
	// with 429 (default 64).
	QueueSize int
	// Workers is the number of concurrent job executors (default 2).
	// Experiment results never depend on it.
	Workers int
	// JobTimeout bounds one job's execution time, measured from dequeue
	// and checked between experiments (default 5 minutes).
	JobTimeout time.Duration
	// MaxBatch bounds the experiments per job (default 64).
	MaxBatch int
	// MaxRetainedJobs bounds how many terminal (done/failed) jobs — and
	// their result payloads — stay queryable (default 1024). The oldest
	// finished jobs are evicted first and then 404.
	MaxRetainedJobs int
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxRetainedJobs <= 0 {
		c.MaxRetainedJobs = 1024
	}
	return c
}

// Job states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// job is one accepted batch.
type job struct {
	id   string
	reqs []ExperimentRequest

	mu        sync.Mutex
	status    string
	completed int
	results   []json.RawMessage
	errMsg    string
	done      chan struct{} // closed on terminal state
	subs      []chan progressEvent
}

// progressEvent is one streaming update.
type progressEvent struct {
	Status    string `json:"status"`
	Completed int    `json:"completed"`
	Total     int    `json:"total"`
	Error     string `json:"error,omitempty"`
}

// snapshot returns the job's current progress under its lock.
func (j *job) snapshot() progressEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	return progressEvent{Status: j.status, Completed: j.completed, Total: len(j.reqs), Error: j.errMsg}
}

// publish updates the job and fans the event out to subscribers. Slow
// subscribers never block a worker: events are dropped on a full channel
// (each subscriber still gets the terminal state from the closing send
// below, because terminal events are delivered with a blocking send
// after the channel is otherwise quiet — see stream handler).
func (j *job) publish() {
	ev := j.snapshot()
	j.mu.Lock()
	subs := append([]chan progressEvent(nil), j.subs...)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Server is the batch experiment service. Create with New, mount
// Handler on an http.Server, and call Drain on shutdown.
type Server struct {
	cfg Config
	env *expt.Env
	mux *http.ServeMux

	mu       sync.Mutex
	draining bool
	queue    chan *job
	jobs     map[string]*job
	// retired lists terminal job ids oldest-first; jobs beyond
	// cfg.MaxRetainedJobs are evicted from the map (bounded memory for
	// a long-lived service).
	retired []string
	nextID  int64
	wg      sync.WaitGroup
}

// New builds a server. The expt.Env — and with it every assembled
// program, pooled machine, and compiled replay schedule — lives for the
// server's lifetime. Call Start to launch the worker pool; until then
// submissions are accepted but only queue.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		env:   expt.NewEnv(),
		mux:   http.NewServeMux(),
		queue: make(chan *job, cfg.QueueSize),
		jobs:  make(map[string]*job),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// Start launches the worker pool and returns s.
func (s *Server) Start() *Server {
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for jb := range s.queue {
				s.runJob(jb)
			}
		}()
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops intake (submissions return 503), waits for every queued
// and running job to reach a terminal state, and stops the workers.
// Safe to call once.
func (s *Server) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// apiError is the structured error envelope every non-2xx response
// carries.
type apiError struct {
	Code    string       `json:"code"`
	Message string       `json:"message"`
	Details []FieldError `json:"details,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, e apiError) {
	writeJSON(w, code, struct {
		Error apiError `json:"error"`
	}{Error: e})
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Experiments []ExperimentRequest `json:"experiments"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	// The body bound follows from the documented per-field limits — a
	// full batch of maximal programs fits — plus headroom for JSON
	// escaping and the non-program fields.
	maxBody := int64(s.cfg.MaxBatch)*2*maxProgramBytes + (1 << 20)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, apiError{
				Code:    "body_too_large",
				Message: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
			})
			return
		}
		writeError(w, http.StatusBadRequest, apiError{Code: "malformed_json", Message: err.Error()})
		return
	}
	if len(req.Experiments) == 0 {
		writeError(w, http.StatusBadRequest, apiError{Code: "empty_batch", Message: "a job needs at least one experiment"})
		return
	}
	if len(req.Experiments) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, apiError{
			Code:    "batch_too_large",
			Message: fmt.Sprintf("batch has %d experiments, limit is %d", len(req.Experiments), s.cfg.MaxBatch),
		})
		return
	}
	var details []FieldError
	for i, ex := range req.Experiments {
		details = append(details, ex.Validate(i)...)
	}
	if len(details) > 0 {
		writeError(w, http.StatusBadRequest, apiError{
			Code:    "invalid_request",
			Message: fmt.Sprintf("%d invalid field(s)", len(details)),
			Details: details,
		})
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, apiError{Code: "draining", Message: "server is draining; resubmit elsewhere"})
		return
	}
	s.nextID++
	jb := &job{
		id:      fmt.Sprintf("job-%d", s.nextID),
		reqs:    req.Experiments,
		status:  StatusQueued,
		results: make([]json.RawMessage, len(req.Experiments)),
		done:    make(chan struct{}),
	}
	select {
	case s.queue <- jb:
		s.jobs[jb.id] = jb
	default:
		s.nextID-- // the id was never exposed; reuse it
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, apiError{
			Code:    "queue_full",
			Message: fmt.Sprintf("job queue is full (%d queued); retry later", s.cfg.QueueSize),
		})
		return
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Total  int    `json:"total"`
	}{ID: jb.id, Status: StatusQueued, Total: len(jb.reqs)})
}

// lookup resolves the {id} path segment.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	jb := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if jb == nil {
		writeError(w, http.StatusNotFound, apiError{Code: "not_found", Message: fmt.Sprintf("no job %q", r.PathValue("id"))})
	}
	return jb
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	ev := jb.snapshot()
	writeJSON(w, http.StatusOK, struct {
		ID string `json:"id"`
		progressEvent
	}{ID: jb.id, progressEvent: ev})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	jb.mu.Lock()
	status, errMsg := jb.status, jb.errMsg
	results := append([]json.RawMessage(nil), jb.results...)
	jb.mu.Unlock()
	switch status {
	case StatusDone:
		// The body deliberately excludes the job id and any timing:
		// identical requests must produce byte-identical result
		// documents (the service determinism contract).
		writeJSON(w, http.StatusOK, struct {
			Results []json.RawMessage `json:"results"`
		}{Results: results})
	case StatusFailed:
		writeError(w, http.StatusConflict, apiError{Code: "job_failed", Message: errMsg})
	default:
		writeError(w, http.StatusConflict, apiError{
			Code:    "not_finished",
			Message: fmt.Sprintf("job is %s; poll status or stream until done", status),
		})
	}
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, apiError{Code: "no_streaming", Message: "response writer cannot stream"})
		return
	}
	ch := make(chan progressEvent, 16)
	jb.mu.Lock()
	jb.subs = append(jb.subs, ch)
	jb.mu.Unlock()
	defer func() {
		jb.mu.Lock()
		for i, c := range jb.subs {
			if c == ch {
				jb.subs = append(jb.subs[:i], jb.subs[i+1:]...)
				break
			}
		}
		jb.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	send := func(ev progressEvent) bool {
		data, _ := json.Marshal(ev)
		fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data)
		fl.Flush()
		return ev.Status == StatusDone || ev.Status == StatusFailed
	}
	// Current state first, so late subscribers see something immediately
	// (and finished jobs terminate the stream at once).
	if send(jb.snapshot()) {
		return
	}
	for {
		select {
		case ev := <-ch:
			if send(ev) {
				return
			}
		case <-jb.done:
			// Drain anything buffered, then emit the terminal snapshot.
			for {
				select {
				case ev := <-ch:
					if send(ev) {
						return
					}
				default:
					send(jb.snapshot())
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	njobs := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
		Queued   int  `json:"queued"`
		Jobs     int  `json:"jobs"`
	}{OK: true, Draining: draining, Queued: len(s.queue), Jobs: njobs})
}

// runJob executes one dequeued job to a terminal state.
func (s *Server) runJob(jb *job) {
	deadline := time.Now().Add(s.cfg.JobTimeout)
	jb.mu.Lock()
	jb.status = StatusRunning
	jb.mu.Unlock()
	jb.publish()

	fail := func(msg string) {
		jb.mu.Lock()
		jb.status = StatusFailed
		jb.errMsg = msg
		jb.mu.Unlock()
		close(jb.done)
		jb.publish()
		s.retire(jb.id)
	}
	for i, req := range jb.reqs {
		if time.Now().After(deadline) {
			fail(fmt.Sprintf("timeout after %v with %d/%d experiments done", s.cfg.JobTimeout, i, len(jb.reqs)))
			return
		}
		res, err := Execute(s.env, req)
		if err != nil {
			fail(fmt.Sprintf("experiments[%d] (%s): %v", i, req.Type, err))
			return
		}
		jb.mu.Lock()
		jb.results[i] = res
		jb.completed = i + 1
		jb.mu.Unlock()
		jb.publish()
	}
	jb.mu.Lock()
	jb.status = StatusDone
	jb.mu.Unlock()
	close(jb.done)
	jb.publish()
	s.retire(jb.id)
}

// retire records a terminal job and evicts the oldest finished jobs
// beyond the retention bound, so a long-lived server's result store
// stays finite.
func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retired = append(s.retired, id)
	for len(s.retired) > s.cfg.MaxRetainedJobs {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
}
