package service

import "sync"

// Priority classes. Dequeue order is weighted toward interactive
// traffic but never starves batch: for every strideBatch/strideInteractive
// interactive jobs dequeued under contention, one batch job is.
const (
	ClassInteractive = "interactive"
	ClassBatch       = "batch"
)

const (
	classInteractiveIdx = iota
	classBatchIdx
	numClasses
)

// classStride is the stride-scheduling weight inverse: a class's pass
// advances by its stride per dequeue, and the lowest pass dequeues next,
// so interactive (stride 1) gets 3 dequeues for each batch (stride 3)
// dequeue under contention.
var classStride = [numClasses]uint64{classInteractiveIdx: 1, classBatchIdx: 3}

// classIndex maps a class name to its queue lane; unknown or empty
// classes are batch (the anonymous default).
func classIndex(class string) int {
	if class == ClassInteractive {
		return classInteractiveIdx
	}
	return classBatchIdx
}

// fairQueue is the job queue: per-class FIFO lanes drained by
// deterministic stride scheduling. The dequeue order is a pure function
// of the arrival order and each job's class — never of worker timing —
// which keeps the scheduler inside the service determinism story:
// *results* never depend on order anyway (each job is a pure function of
// its request), but a reproducible execution order makes fairness
// testable and incident timelines replayable.
//
// Scheduling rule: each class keeps a pass counter, advanced by its
// stride on every dequeue from it. pop takes the non-empty class with
// the lowest pass; ties break toward the higher-priority (lower-index)
// class. Within a class, strict FIFO. When the queue goes idle the
// passes reset, and a class that goes from empty to non-empty is caught
// up to the current minimum pass so it cannot burn accumulated credit
// starving the others.
type fairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lanes  [numClasses][]*job
	pass   [numClasses]uint64
	n      int
	closed bool
}

func newFairQueue() *fairQueue {
	q := &fairQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job on its class lane. Push never blocks and never
// fails — admission control (queue bound, tenant quotas) happens in
// handleSubmit before the push, under Server.mu.
func (q *fairQueue) push(jb *job) {
	q.mu.Lock()
	idx := classIndex(jb.class)
	if len(q.lanes[idx]) == 0 {
		// Catch an empty lane up to the busiest floor so arriving after an
		// idle stretch grants priority, not unbounded credit.
		if floor, ok := q.minActivePassLocked(); ok && q.pass[idx] < floor {
			q.pass[idx] = floor
		}
	}
	q.lanes[idx] = append(q.lanes[idx], jb)
	q.n++
	q.mu.Unlock()
	q.cond.Signal()
}

// minActivePassLocked returns the lowest pass among non-empty lanes.
func (q *fairQueue) minActivePassLocked() (uint64, bool) {
	var floor uint64
	found := false
	for i := 0; i < numClasses; i++ {
		if len(q.lanes[i]) == 0 {
			continue
		}
		if !found || q.pass[i] < floor {
			floor, found = q.pass[i], true
		}
	}
	return floor, found
}

// pop blocks for the next job in fair order; ok is false once the queue
// is closed and drained, which is the workers' exit signal.
func (q *fairQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.n == 0 {
		return nil, false
	}
	best := -1
	for i := 0; i < numClasses; i++ {
		if len(q.lanes[i]) == 0 {
			continue
		}
		if best == -1 || q.pass[i] < q.pass[best] {
			best = i // strict <: ties stay with the lower (higher-priority) index
		}
	}
	jb := q.lanes[best][0]
	q.lanes[best][0] = nil // free the job for GC once it retires
	q.lanes[best] = q.lanes[best][1:]
	q.pass[best] += classStride[best]
	q.n--
	if q.n == 0 {
		// Idle queue: reset so the schedule restarts from a clean slate and
		// stays a pure function of the arrivals that follow.
		q.pass = [numClasses]uint64{}
		q.lanes = [numClasses][]*job{}
	}
	return jb, true
}

// depth returns the total queued jobs.
func (q *fairQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// depthByClass returns the per-lane depths for /healthz.
func (q *fairQueue) depthByClass() (interactive, batch int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.lanes[classInteractiveIdx]), len(q.lanes[classBatchIdx])
}

// close stops intake; blocked and future pops drain the remaining jobs
// and then return ok=false. Idempotent.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
