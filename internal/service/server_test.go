package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"quma/internal/expt"
)

// testBatch is a mixed batch exercising the sweep engine, the chunked
// memory experiments, and the raw-assembly path, sized so the full
// determinism test stays in CI budget.
func testBatch() SubmitRequest {
	return SubmitRequest{Experiments: []ExperimentRequest{
		{Type: "t1", Seed: 5, Backend: "trajectory", Rounds: 40},
		{Type: "asm", Seed: 9, Rounds: 60, Program: "mov r15, 40000\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"},
		{Type: "rb", Seed: 2, SeqSeed: 7, Lengths: []int{1, 4, 8}, Trials: 2, Rounds: 30},
		{Type: "repcode", Seed: 3, Rounds: 60},
	}}
}

func startTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg).Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(s.Drain)
	return s, hs
}

func submit(t *testing.T, base string, req SubmitRequest) (string, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", resp
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return acc.ID, resp
}

// waitDone polls the status endpoint until the job reaches a terminal
// state.
func waitDone(t *testing.T, base, id string) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch st.Status {
		case StatusDone:
			return st.Status
		case StatusFailed:
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return ""
}

func fetchResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, body)
	}
	return body
}

// TestConcurrentIdenticalJobsBitIdentical is the service determinism
// contract: N concurrent submissions of the same batch — racing for
// workers and pooled machines — return byte-identical result documents,
// and each experiment matches a direct internal/expt call on a fresh
// environment. Runs under -race in CI.
func TestConcurrentIdenticalJobsBitIdentical(t *testing.T) {
	_, hs := startTestServer(t, Config{Workers: 3, QueueSize: 16})
	req := testBatch()

	const n = 6
	ids := make([]string, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(req)
			resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			// 202 is a fresh accept; 200 is a content-addressed cache hit —
			// a racing submission that landed after a sibling already
			// completed is answered with the sibling's retained job, which
			// serves the identical bytes the loop below asserts.
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("submit %d: status %d", i, resp.StatusCode)
				return
			}
			var acc struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			ids[i] = acc.ID
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	bodies := make([][]byte, n)
	for i, id := range ids {
		waitDone(t, hs.URL, id)
		bodies[i] = fetchResult(t, hs.URL, id)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("result %d differs from result 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}

	// And the service result must equal the direct internal/expt path.
	env := expt.NewEnv()
	var doc struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(bodies[0], &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != len(req.Experiments) {
		t.Fatalf("got %d results, want %d", len(doc.Results), len(req.Experiments))
	}
	for i, ex := range req.Experiments {
		direct, err := Execute(context.Background(), env, ex)
		if err != nil {
			t.Fatalf("direct experiments[%d]: %v", i, err)
		}
		// The served raw message was re-indented by the response
		// encoder; compare compacted forms.
		var a, b bytes.Buffer
		if err := json.Compact(&a, doc.Results[i]); err != nil {
			t.Fatal(err)
		}
		if err := json.Compact(&b, direct); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("experiments[%d] (%s): service result differs from direct call\nservice: %s\ndirect:  %s",
				i, ex.Type, a.Bytes(), b.Bytes())
		}
	}

	// Cache-hit byte-identity vs cold execution: with every sibling
	// finished, one more unkeyed resubmission must be a terminal-
	// immediate cache hit (200, cache:"hit", status done) whose result
	// document is byte-identical to the cold executions above.
	body, _ := json.Marshal(req)
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm resubmit: status %d, want 200 cache hit", resp.StatusCode)
	}
	if cs := resp.Header.Get("Cache-Status"); !strings.Contains(cs, "hit") {
		t.Fatalf("warm resubmit: Cache-Status %q, want a hit", cs)
	}
	var hit struct {
		ID     string `json:"id"`
		Cache  string `json:"cache"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hit); err != nil {
		t.Fatal(err)
	}
	if hit.Cache != "hit" || hit.Status != StatusDone || hit.ID == "" {
		t.Fatalf("warm resubmit envelope: %+v, want cache=hit status=done", hit)
	}
	if got := fetchResult(t, hs.URL, hit.ID); !bytes.Equal(got, bodies[0]) {
		t.Fatalf("cache-hit result differs from cold execution:\nhit:  %s\ncold: %s", got, bodies[0])
	}
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestMalformedRequestsReturnStructured400(t *testing.T) {
	_, hs := startTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body string
		wantReason string
		wantField  string
		wantIndex  int
	}{
		{"truncated json", `{"experiments": [`, "malformed_json", "", 0},
		{"unknown top-level field", `{"experimentz": []}`, "malformed_json", "", 0},
		{"empty batch", `{"experiments": []}`, "empty_batch", "", 0},
		{"unknown type", `{"experiments": [{"type": "teleportation"}]}`, "invalid_fields", "type", 0},
		{"bad backend", `{"experiments": [{"type": "t1", "backend": "gpu"}]}`, "invalid_fields", "backend", 0},
		{"bad replay mode", `{"experiments": [{"type": "t1", "replay": "warp"}]}`, "invalid_fields", "replay", 0},
		{"rb too few lengths", `{"experiments": [{"type": "t1"}, {"type": "rb", "lengths": [1, 2]}]}`, "invalid_fields", "lengths", 1},
		{"even repcode distance", `{"experiments": [{"type": "repcode", "data_qubits": 4}]}`, "invalid_fields", "data_qubits", 0},
		{"wide repcode on density", `{"experiments": [{"type": "repcode", "data_qubits": 5}]}`, "invalid_fields", "backend", 0},
		{"asm with no program", `{"experiments": [{"type": "asm"}]}`, "invalid_fields", "program", 0},
		{"asm that does not assemble", `{"experiments": [{"type": "asm", "program": "frob r1"}]}`, "invalid_fields", "program", 0},
		{"negative rounds", `{"experiments": [{"type": "allxy", "rounds": -5}]}`, "invalid_fields", "rounds", 0},
		{"qubit beyond density register", `{"experiments": [{"type": "t1", "qubit": 12}]}`, "invalid_fields", "qubit", 0},
		{"negative T1", `{"experiments": [{"type": "t1", "t1_sec": -1}]}`, "invalid_fields", "t1_sec", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, hs.URL+"/v1/jobs", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
			}
			var e struct {
				Error struct {
					Code    string       `json:"code"`
					Reason  string       `json:"reason"`
					Details []FieldError `json:"details"`
				} `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error body is not structured JSON: %v (%s)", err, body)
			}
			if e.Error.Code != CodeInvalidArgument {
				t.Errorf("code %q, want %q", e.Error.Code, CodeInvalidArgument)
			}
			if e.Error.Reason != tc.wantReason {
				t.Errorf("reason %q, want %q", e.Error.Reason, tc.wantReason)
			}
			if tc.wantField != "" {
				found := false
				for _, d := range e.Error.Details {
					if d.Field == tc.wantField && d.Index == tc.wantIndex {
						found = true
					}
				}
				if !found {
					t.Errorf("details %+v missing field %q at index %d", e.Error.Details, tc.wantField, tc.wantIndex)
				}
			}
		})
	}
}

// TestQueueFullReturns429 fills the bounded queue of a server whose
// workers were never started, so occupancy is deterministic.
func TestQueueFullReturns429(t *testing.T) {
	s := New(Config{QueueSize: 2})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	body, _ := json.Marshal(SubmitRequest{Experiments: []ExperimentRequest{{Type: "t1", Rounds: 5}}})
	for i := 0; i < 2; i++ {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill %d: status %d", i, resp.StatusCode)
		}
	}
	resp, b := postJSON(t, hs.URL+"/v1/jobs", string(body))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry a Retry-After hint")
	}
	var e struct {
		Error struct {
			Code   string `json:"code"`
			Reason string `json:"reason"`
		} `json:"error"`
	}
	if err := json.Unmarshal(b, &e); err != nil || e.Error.Code != CodeResourceExhausted || e.Error.Reason != "queue_full" {
		t.Fatalf("want structured resource_exhausted/queue_full error, got %s (err %v)", b, err)
	}
	// Draining the never-started server must still finish the queued
	// jobs (Drain closes the queue; Start the workers to consume it).
	s.Start()
	s.Drain()
}

func TestDrainFinishesQueuedJobsAndRejectsNew(t *testing.T) {
	s, hs := startTestServer(t, Config{Workers: 1, QueueSize: 8})
	req := SubmitRequest{Experiments: []ExperimentRequest{
		{Type: "asm", Seed: 4, Rounds: 40, Program: "mov r15, 400\nQNopReg r15\nPulse {q0}, X180\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"},
	}}
	var ids []string
	for i := 0; i < 3; i++ {
		// Distinct seeds: identical batches would dedupe onto one job
		// through the result cache once the first completes.
		req.Experiments[0].Seed = int64(4 + i)
		id, resp := submit(t, hs.URL, req)
		if id == "" {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, id)
	}
	s.Drain()
	// Every job accepted before the drain must have completed.
	for _, id := range ids {
		if got := waitDone(t, hs.URL, id); got != StatusDone {
			t.Fatalf("job %s: status %s after drain", id, got)
		}
	}
	// And new work is refused with 503.
	body, _ := json.Marshal(req)
	resp, b := postJSON(t, hs.URL+"/v1/jobs", string(body))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d, want 503; body %s", resp.StatusCode, b)
	}
}

// TestDrainTimeoutCancelsInFlightJobs holds a worker busy with an
// artificially slow sweep, then drains with a hard deadline: the drain
// must return promptly (not wait out the whole job), the job must end
// `canceled` with no result, and post-drain submissions must be refused.
func TestDrainTimeoutCancelsInFlightJobs(t *testing.T) {
	s := New(Config{
		Workers: 1,
		Faults:  &expt.FaultHooks{Shot: func(int) { time.Sleep(time.Millisecond) }},
	}).Start()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	id, resp := submit(t, hs.URL, SubmitRequest{Experiments: []ExperimentRequest{
		{Type: "t1", Rounds: 100},
	}})
	if id == "" {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	// Wait for the worker to pick the job up, so the drain deadline is
	// exercised against a genuinely running sweep.
	deadline := time.Now().Add(10 * time.Second)
	for {
		sresp, err := http.Get(hs.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Status string `json:"status"`
		}
		if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		sresp.Body.Close()
		if st.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	s.DrainTimeout(30 * time.Millisecond)
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("drain with a 30ms deadline took %v", waited)
	}
	sresp, err := http.Get(hs.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Status string `json:"status"`
		Code   string `json:"code"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Status != StatusCanceled || st.Code != CodeCanceled {
		t.Fatalf("drained job is %s/%s, want canceled/canceled", st.Status, st.Code)
	}
	rresp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("canceled job served a result (status %d)", rresp.StatusCode)
	}
	body, _ := json.Marshal(SubmitRequest{Experiments: []ExperimentRequest{{Type: "t1"}}})
	presp, b := postJSON(t, hs.URL+"/v1/jobs", string(body))
	if presp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status %d, want 503; body %s", presp.StatusCode, b)
	}
}

func TestStatusResultAndStreamLifecycle(t *testing.T) {
	_, hs := startTestServer(t, Config{Workers: 1})

	// Unknown job: structured 404 everywhere.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/stream"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}

	req := SubmitRequest{Experiments: []ExperimentRequest{
		{Type: "asm", Seed: 1, Rounds: 30, Program: "mov r15, 400\nQNopReg r15\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"},
		{Type: "asm", Seed: 2, Rounds: 30, Program: "mov r15, 400\nQNopReg r15\nPulse {q0}, X180\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"},
	}}
	id, resp := submit(t, hs.URL, req)
	if id == "" {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	// The SSE stream must deliver monotonic progress ending in done.
	sresp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var last progressEvent
	prev := -1
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
			t.Fatalf("bad stream payload %q: %v", line, err)
		}
		if last.Completed < prev {
			t.Fatalf("progress went backwards: %d after %d", last.Completed, prev)
		}
		prev = last.Completed
		if last.Status == StatusDone || last.Status == StatusFailed {
			break
		}
	}
	if last.Status != StatusDone || last.Completed != 2 || last.Total != 2 {
		t.Fatalf("terminal stream event %+v, want done 2/2", last)
	}

	// After done, result is served and a second fetch is identical.
	r1 := fetchResult(t, hs.URL, id)
	r2 := fetchResult(t, hs.URL, id)
	if !bytes.Equal(r1, r2) {
		t.Fatal("re-fetching a result changed it")
	}

	// healthz reports liveness.
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil || !health.OK {
		t.Fatalf("healthz not ok (err %v)", err)
	}
}

// TestRetentionEvictsOldestFinishedJobs bounds the result store: with
// MaxRetainedJobs=1, finishing a second job evicts the first to 404.
func TestRetentionEvictsOldestFinishedJobs(t *testing.T) {
	_, hs := startTestServer(t, Config{Workers: 1, MaxRetainedJobs: 1})
	req := SubmitRequest{Experiments: []ExperimentRequest{
		{Type: "asm", Seed: 1, Rounds: 10, Program: "mov r15, 400\nQNopReg r15\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n"},
	}}
	id1, _ := submit(t, hs.URL, req)
	waitDone(t, hs.URL, id1)
	fetchResult(t, hs.URL, id1) // still retained: it is the only finished job
	req.Experiments[0].Seed = 2 // distinct job, not a cache hit
	id2, _ := submit(t, hs.URL, req)
	waitDone(t, hs.URL, id2)
	fetchResult(t, hs.URL, id2)
	resp, err := http.Get(hs.URL + "/v1/jobs/" + id1)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job status %d, want 404", resp.StatusCode)
	}
}

// TestJobTimeoutFailsCleanly gives a job a deadline it cannot meet; the
// job must fail with the deadline_exceeded code instead of hanging.
func TestJobTimeoutFailsCleanly(t *testing.T) {
	_, hs := startTestServer(t, Config{Workers: 1, JobTimeout: time.Nanosecond})
	id, resp := submit(t, hs.URL, SubmitRequest{Experiments: []ExperimentRequest{
		{Type: "t1", Rounds: 5},
		{Type: "t1", Rounds: 5, Seed: 1},
	}})
	if id == "" {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		sresp, err := http.Get(hs.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Status string `json:"status"`
			Code   string `json:"code"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		sresp.Body.Close()
		if st.Status == StatusFailed {
			if st.Code != CodeDeadlineExceeded {
				t.Fatalf("failure code %q (message %q), want %q", st.Code, st.Error, CodeDeadlineExceeded)
			}
			break
		}
		if st.Status == StatusDone {
			t.Fatal("job with a 1ns budget cannot finish")
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached a terminal state")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The result endpoint reports the failure as a conflict.
	rresp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("failed job result status %d, want 409", rresp.StatusCode)
	}
}

// TestExecutionErrorFailsJob submits a program that validates but fails
// at run time (halts on an absent qubit), asserting structured failure.
func TestExecutionErrorFailsJob(t *testing.T) {
	_, hs := startTestServer(t, Config{Workers: 1})
	id, resp := submit(t, hs.URL, SubmitRequest{Experiments: []ExperimentRequest{
		{Type: "asm", Seed: 1, Rounds: 20, NumQubits: 1,
			Program: "mov r15, 400\nQNopReg r15\nMPG {q3}, 300\nMD {q3}, r7\nhalt\n"},
	}})
	if id == "" {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		sresp, err := http.Get(hs.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		sresp.Body.Close()
		if st.Status == StatusFailed {
			if !strings.Contains(st.Error, "experiments[0]") {
				t.Fatalf("failure %q does not locate the experiment", st.Error)
			}
			return
		}
		if st.Status == StatusDone {
			t.Fatal("job must fail: the program measures an absent qubit")
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached a terminal state")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
