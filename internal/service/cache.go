package service

import "container/list"

// resultCache is the content-addressed result index: canonical request
// hash → retained job id, bounded LRU. It holds references, never result
// bytes — a hit is answered with the original retained job, whose result
// document already exists (journaled when durability is on), so cache
// hits are byte-identical to cold execution *by construction*: there is
// exactly one result document per canonical request, and the cache only
// ever points at it.
//
// The cache is an index over the retention window, so its entries can
// never outlive their jobs: finishJob inserts on done, eviction from the
// retention window invalidates, and recovery rebuilds the index from the
// journaled terminal jobs. All methods require the caller to hold
// Server.mu — the cache shares the server's one lock rather than adding
// ordering concerns of its own.
type resultCache struct {
	cap int
	ll  *list.List               // MRU at front; values are *cacheEntry
	m   map[string]*list.Element // canonical hash → element

	hits, misses uint64
	// capacityEvictions counts entries dropped by the LRU capacity bound
	// (insert); invalidations counts entries dropped because the
	// retention window evicted their job (invalidate). The two causes
	// used to share one counter, which made a full cache
	// indistinguishable from an undersized retention window on
	// /healthz — they need opposite remedies (grow CacheSize vs grow
	// MaxRetainedJobs), so they are counted apart.
	capacityEvictions, invalidations uint64
}

type cacheEntry struct {
	hash  string
	jobID string
}

// newResultCache builds a cache holding at most capacity entries;
// capacity <= 0 returns nil (callers treat a nil cache as disabled).
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// lookup resolves a canonical hash to its retained job id, refreshing
// the entry's recency and counting the hit or miss.
func (c *resultCache) lookup(hash string) (string, bool) {
	if el, ok := c.m[hash]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).jobID, true
	}
	c.misses++
	return "", false
}

// insert indexes a completed job under its canonical hash, evicting the
// least-recently-used entry past capacity. A hash already present is
// repointed (the newer job holds the same bytes, by determinism) rather
// than duplicated.
func (c *resultCache) insert(hash, jobID string) {
	if el, ok := c.m[hash]; ok {
		el.Value.(*cacheEntry).jobID = jobID
		c.ll.MoveToFront(el)
		return
	}
	c.m[hash] = c.ll.PushFront(&cacheEntry{hash: hash, jobID: jobID})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).hash)
		c.capacityEvictions++
	}
}

// invalidate drops the entry for hash if it still points at jobID —
// called when the retention window evicts a job, so the cache never
// serves a reference to a 404. A hash since repointed at a newer job is
// left alone.
func (c *resultCache) invalidate(hash, jobID string) {
	if el, ok := c.m[hash]; ok && el.Value.(*cacheEntry).jobID == jobID {
		c.ll.Remove(el)
		delete(c.m, hash)
		c.invalidations++
	}
}

// cacheStats is the /healthz cache block. Evictions remains the sum of
// the two split counters so existing dashboards keep reading a total;
// capacity_evictions and invalidations attribute it to its cause.
type cacheStats struct {
	Entries           int    `json:"entries"`
	Capacity          int    `json:"capacity"`
	Hits              uint64 `json:"hits"`
	Misses            uint64 `json:"misses"`
	Evictions         uint64 `json:"evictions"`
	CapacityEvictions uint64 `json:"capacity_evictions"`
	Invalidations     uint64 `json:"invalidations"`
}

func (c *resultCache) stats() *cacheStats {
	return &cacheStats{
		Entries: c.ll.Len(), Capacity: c.cap, Hits: c.hits, Misses: c.misses,
		Evictions:         c.capacityEvictions + c.invalidations,
		CapacityEvictions: c.capacityEvictions,
		Invalidations:     c.invalidations,
	}
}
