package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

func cloneSubmit(t *testing.T, base, auth string, body []byte) *http.Request {
	t.Helper()
	hr, _ := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	hr.Header.Set("Content-Type", "application/json")
	if auth != "" {
		hr.Header.Set("Authorization", auth)
	}
	return hr
}

// TestAuthRejectsBadCredentials pins the authentication contract: no
// header is anonymous (admitted), a malformed header or an unknown key
// is 401 unauthenticated — presenting a credential means asking to be
// authenticated; a typo must not silently demote to anonymous.
func TestAuthRejectsBadCredentials(t *testing.T) {
	_, hs := startTestServer(t, Config{
		Workers: 1,
		Tenants: []TenantConfig{{Name: "alice", Key: "alice-key"}},
	})
	post := func(auth string, req SubmitRequest) (int, apiError) {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.DefaultClient.Do(cloneSubmit(t, hs.URL, auth, body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env struct {
			Error apiError `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&env)
		return resp.StatusCode, env.Error
	}

	if code, _ := post("", quickAsm(90)); code != http.StatusAccepted {
		t.Fatalf("anonymous submit: status %d, want 202", code)
	}
	if code, _ := post("Bearer alice-key", quickAsm(91)); code != http.StatusAccepted {
		t.Fatalf("authenticated submit: status %d, want 202", code)
	}
	for _, auth := range []string{"Basic xyz", "Bearer ", "alice-key"} {
		code, e := post(auth, quickAsm(92))
		if code != http.StatusUnauthorized || e.Code != CodeUnauthenticated || e.Reason != "malformed_authorization" {
			t.Fatalf("auth %q: status %d code %q reason %q, want 401 unauthenticated/malformed_authorization", auth, code, e.Code, e.Reason)
		}
	}
	code, e := post("Bearer wrong-key", quickAsm(93))
	if code != http.StatusUnauthorized || e.Code != CodeUnauthenticated || e.Reason != "unknown_key" {
		t.Fatalf("unknown key: status %d code %q reason %q, want 401 unauthenticated/unknown_key", code, e.Code, e.Reason)
	}
}

// TestTenantJobQuota drives a tenant into its MaxQueuedJobs bound: the
// over-quota submission is 429 resource_exhausted/tenant_quota with a
// Retry-After hint, anonymous traffic is unaffected, and completing the
// job releases the quota.
func TestTenantJobQuota(t *testing.T) {
	s := New(Config{
		Workers: 1,
		Tenants: []TenantConfig{{Name: "alice", Key: "ak", MaxQueuedJobs: 1}},
	})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	auth := "Bearer ak"

	post := func(auth string, req SubmitRequest) (*http.Response, []byte) {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.DefaultClient.Do(cloneSubmit(t, hs.URL, auth, body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b := new(bytes.Buffer)
		b.ReadFrom(resp.Body)
		return resp, b.Bytes()
	}

	// Workers not started: the first job pins the quota deterministically.
	resp, _ := post(auth, quickAsm(94))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	resp, body := post(auth, quickAsm(95))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	var env struct {
		Error apiError `json:"error"`
	}
	json.Unmarshal(body, &env)
	if env.Error.Code != CodeResourceExhausted || env.Error.Reason != "tenant_quota" {
		t.Fatalf("over-quota error %+v, want resource_exhausted/tenant_quota", env.Error)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("tenant-quota 429 carries no Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 30 {
		t.Fatalf("Retry-After %q, want whole seconds in [1,30]", ra)
	}
	// Tenant quotas never gate anonymous traffic.
	if resp, _ := post("", quickAsm(96)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("anonymous submit under tenant quota: status %d", resp.StatusCode)
	}

	// Completion releases the quota (release happens at retire, just
	// after the status flips terminal — poll briefly).
	s.Start()
	t.Cleanup(s.Drain)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, _ := post(auth, quickAsm(95))
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("quota never released after completion: last status %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTenantExperimentQuota pins the second quota axis: a batch whose
// experiment count exceeds MaxExperimentsInFlight is rejected even as
// the tenant's first job.
func TestTenantExperimentQuota(t *testing.T) {
	_, hs := startTestServer(t, Config{
		Workers: 1,
		Tenants: []TenantConfig{{Name: "bob", Key: "bk", MaxExperimentsInFlight: 1}},
	})
	two := SubmitRequest{Experiments: []ExperimentRequest{
		quickAsm(97).Experiments[0], quickAsm(98).Experiments[0],
	}}
	body, _ := json.Marshal(two)
	resp, err := http.DefaultClient.Do(cloneSubmit(t, hs.URL, "Bearer bk", body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		Error apiError `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	if resp.StatusCode != http.StatusTooManyRequests || env.Error.Reason != "tenant_quota" {
		t.Fatalf("status %d reason %q, want 429 tenant_quota", resp.StatusCode, env.Error.Reason)
	}
}

// TestLoadAPIKeys covers the key-file loader: a valid file parses, and
// unknown fields, empty tenant lists, and unreadable paths are errors.
func TestLoadAPIKeys(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		return p
	}

	good := write("good.json", `{"tenants": [
		{"name": "alice", "key": "ak", "class": "interactive", "max_queued_jobs": 4},
		{"name": "bob", "key": "bk", "max_experiments_in_flight": 64}
	]}`)
	tenants, err := LoadAPIKeys(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 2 || tenants[0].Name != "alice" || tenants[0].Class != ClassInteractive || tenants[1].MaxExperimentsInFlight != 64 {
		t.Fatalf("parsed tenants %+v", tenants)
	}

	for name, content := range map[string]string{
		"unknown.json": `{"tenants": [{"name": "x", "key": "k", "classs": "batch"}]}`,
		"empty.json":   `{"tenants": []}`,
		"scalar.json":  `"not an object"`,
	} {
		if _, err := LoadAPIKeys(write(name, content)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	if _, err := LoadAPIKeys(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: want error, got nil")
	}
}

// TestTenantTableValidation covers the static-config checks that make
// New panic: missing fields, the reserved anonymous name, unknown
// classes, negative quotas, and duplicate names/keys.
func TestTenantTableValidation(t *testing.T) {
	bad := map[string][]TenantConfig{
		"missing name":   {{Key: "k"}},
		"missing key":    {{Name: "x"}},
		"reserved name":  {{Name: AnonymousTenant, Key: "k"}},
		"unknown class":  {{Name: "x", Key: "k", Class: "platinum"}},
		"negative quota": {{Name: "x", Key: "k", MaxQueuedJobs: -1}},
		"duplicate name": {{Name: "x", Key: "k1"}, {Name: "x", Key: "k2"}},
		"duplicate key":  {{Name: "x", Key: "k"}, {Name: "y", Key: "k"}},
	}
	for name, cfgs := range bad {
		if _, err := newTenantTable(cfgs); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	tbl, err := newTenantTable([]TenantConfig{{Name: "x", Key: "k", Class: ClassInteractive}})
	if err != nil {
		t.Fatal(err)
	}
	if st := tbl.resolve("x"); st.class != ClassInteractive {
		t.Fatalf("resolve(x).class = %q", st.class)
	}
	// A journaled name the key file no longer declares resolves to
	// anonymous: accepted work re-executes, it just stops counting
	// against a quota that no longer exists.
	if st := tbl.resolve("gone"); st != tbl.anon {
		t.Fatal("unknown journaled tenant did not resolve to anonymous")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("New with an invalid tenant config did not panic")
		}
	}()
	New(Config{Tenants: []TenantConfig{{Name: "x"}}})
}

// TestQueueFullRetryAfterDerived checks the satellite bugfix: the
// queue-full 429's Retry-After is derived from the backlog (whole
// seconds in [1,30]), not the old hardcoded "1" regardless of depth.
// With a cold EWMA (1s prior), 8 queued jobs over 1 worker estimate 8s.
func TestQueueFullRetryAfterDerived(t *testing.T) {
	s := New(Config{Workers: 1, QueueSize: 8})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	// Workers not started: fill the queue deterministically.
	for i := 0; i < 8; i++ {
		body, _ := json.Marshal(quickAsm(int64(100 + i)))
		resp, err := http.DefaultClient.Do(cloneSubmit(t, hs.URL, "", body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit %d: status %d", i, resp.StatusCode)
		}
	}
	body, _ := json.Marshal(quickAsm(200))
	resp, err := http.DefaultClient.Do(cloneSubmit(t, hs.URL, "", body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not whole seconds", ra)
	}
	// 8 pending × 1s EWMA prior / 1 worker = 8s: derived from depth, and
	// in particular not the pre-fix constant 1.
	if secs != 8 {
		t.Fatalf("Retry-After = %d, want 8 (depth-derived with the cold EWMA prior)", secs)
	}
	if !strings.Contains(string(mustRead(t, resp)), "queue_full") {
		t.Fatal("429 body does not name queue_full")
	}
	s.Start()
	s.Drain()
}

func mustRead(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	b := new(bytes.Buffer)
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}
