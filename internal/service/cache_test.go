package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"quma/internal/expt"
)

// submitRaw posts a batch and returns the HTTP status, the decoded
// envelope fields the cache tests care about, and the Cache-Status
// header.
func submitRaw(t *testing.T, base string, req SubmitRequest) (status int, id, cache, jobStatus, header string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env struct {
		ID     string `json:"id"`
		Cache  string `json:"cache"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, env.ID, env.Cache, env.Status, resp.Header.Get("Cache-Status")
}

// TestCacheHitTerminalImmediate is the content-addressed cache
// contract: an unkeyed resubmission of a canonically identical batch is
// answered 200/done immediately with the original job, and the result
// document is byte-identical to the cold execution. A request differing
// only in result-neutral fields (workers, shot_workers) is the same
// canonical form and also hits; changing any result-affecting field
// misses.
func TestCacheHitTerminalImmediate(t *testing.T) {
	_, hs := startTestServer(t, Config{Workers: 2})
	base := hs.URL

	req := SubmitRequest{Experiments: []ExperimentRequest{
		{Type: "t1", Seed: 31, Backend: "trajectory", Rounds: 30},
	}}
	id1, resp := submit(t, base, req)
	if id1 == "" {
		t.Fatalf("cold submit: status %d", resp.StatusCode)
	}
	waitDone(t, base, id1)
	cold := fetchResult(t, base, id1)

	// Identical resubmission: terminal-immediate hit on the same job.
	code, id, cache, status, header := submitRaw(t, base, req)
	if code != http.StatusOK || cache != "hit" || status != StatusDone {
		t.Fatalf("resubmit: status %d cache %q job status %q, want 200/hit/done", code, cache, status)
	}
	if id != id1 {
		t.Fatalf("cache hit returned job %s, want original %s", id, id1)
	}
	if !strings.Contains(header, "hit") {
		t.Fatalf("Cache-Status header %q does not mark a hit", header)
	}
	if got := fetchResult(t, base, id); !bytes.Equal(got, cold) {
		t.Fatalf("cache-hit result differs from cold execution:\ncold: %s\nhit:  %s", cold, got)
	}

	// Result-neutral variation: same canonical form, still a hit.
	neutral := SubmitRequest{Experiments: []ExperimentRequest{
		{Type: "t1", Seed: 31, Backend: "trajectory", Rounds: 30, Workers: 1, ShotWorkers: 2, BatchLanes: 4},
	}}
	code, id, cache, _, _ = submitRaw(t, base, neutral)
	if code != http.StatusOK || cache != "hit" || id != id1 {
		t.Fatalf("neutral-field variant: status %d cache %q id %s, want 200/hit/%s", code, cache, id, id1)
	}

	// Result-affecting variation: different canonical form, a miss.
	affecting := SubmitRequest{Experiments: []ExperimentRequest{
		{Type: "t1", Seed: 32, Backend: "trajectory", Rounds: 30},
	}}
	code, id, cache, _, _ = submitRaw(t, base, affecting)
	if code != http.StatusAccepted || cache != "" {
		t.Fatalf("affecting-field variant: status %d cache %q, want 202 miss", code, cache)
	}
	if id == id1 {
		t.Fatal("affecting-field variant reused the cached job")
	}
}

// TestCacheDisabled pins the opt-out: CacheSize < 0 turns memoization
// off and identical resubmissions execute as fresh jobs.
func TestCacheDisabled(t *testing.T) {
	_, hs := startTestServer(t, Config{Workers: 2, CacheSize: -1})
	base := hs.URL

	req := quickAsm(33)
	id1, resp := submit(t, base, req)
	if id1 == "" {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	waitDone(t, base, id1)
	code, id, _, _, _ := submitRaw(t, base, req)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit with cache disabled: status %d, want 202", code)
	}
	if id == id1 {
		t.Fatal("resubmit with cache disabled reused the original job")
	}
	// The two executions are still byte-identical — determinism does not
	// depend on the cache; the cache depends on determinism.
	waitDone(t, base, id)
	if a, b := fetchResult(t, base, id1), fetchResult(t, base, id); !bytes.Equal(a, b) {
		t.Fatal("independent executions of the same request differ")
	}
}

// TestKeyedSubmissionsBypassCache pins the precedence: an
// Idempotency-Key submission takes the keyed dedup path (409 on
// mismatch, replay on match) and never the content cache, even when the
// cache holds its canonical form under another job.
func TestKeyedSubmissionsBypassCache(t *testing.T) {
	_, hs := startTestServer(t, Config{Workers: 2})
	base := hs.URL

	req := quickAsm(34)
	id1, resp := submit(t, base, req)
	if id1 == "" {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	waitDone(t, base, id1)

	// Keyed submission of the cached form: a fresh job under the key.
	id2, code := submitKeyed(t, base, req, "bypass-key")
	if code != http.StatusAccepted {
		t.Fatalf("keyed submit: status %d, want 202", code)
	}
	if id2 == id1 {
		t.Fatal("keyed submission was served from the content cache")
	}
	waitDone(t, base, id2)
	// Replaying the key returns the keyed job, not the cached one.
	id3, code := submitKeyed(t, base, req, "bypass-key")
	if code != http.StatusOK || id3 != id2 {
		t.Fatalf("key replay: status %d id %s, want 200 %s", code, id3, id2)
	}
}

// healthCache fetches the /healthz cache block.
func healthCache(t *testing.T, base string) cacheStats {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Cache *cacheStats `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Cache == nil {
		t.Fatal("healthz has no cache block on a cache-enabled server")
	}
	return *h.Cache
}

// TestCacheLRUEvictionAndCounters drives the cache past capacity and
// checks the LRU boundary and the /healthz counters: the evicted form
// misses (re-executes), the retained form still hits.
func TestCacheLRUEvictionAndCounters(t *testing.T) {
	_, hs := startTestServer(t, Config{Workers: 1, CacheSize: 2})
	base := hs.URL

	run := func(seed int64) string {
		id, resp := submit(t, base, quickAsm(seed))
		if id == "" {
			t.Fatalf("submit seed %d: status %d", seed, resp.StatusCode)
		}
		waitDone(t, base, id)
		return id
	}
	run(40)
	run(41)
	// Touch 40 so 41 is the LRU entry, then insert 42 to evict it.
	if code, _, cache, _, _ := submitRaw(t, base, quickAsm(40)); code != http.StatusOK || cache != "hit" {
		t.Fatalf("touch seed 40: status %d cache %q, want hit", code, cache)
	}
	run(42)

	// Check the retained form before resubmitting the evicted one: the
	// evicted form's re-execution re-inserts it, which would evict 40.
	if code, _, cache, _, _ := submitRaw(t, base, quickAsm(40)); code != http.StatusOK || cache != "hit" {
		t.Fatalf("retained form: status %d cache %q, want hit", code, cache)
	}
	if code, _, _, _, _ := submitRaw(t, base, quickAsm(41)); code != http.StatusAccepted {
		t.Fatalf("evicted form: status %d, want 202 (miss, re-executes)", code)
	}

	st := healthCache(t, base)
	if st.Capacity != 2 || st.Entries > 2 {
		t.Fatalf("cache stats %+v: capacity/entries out of bounds", st)
	}
	if st.Hits < 2 || st.Misses < 3 || st.Evictions < 1 {
		t.Fatalf("cache stats %+v: want >=2 hits, >=3 misses, >=1 eviction", st)
	}
	// The split counters attribute the evictions: everything here was
	// LRU capacity pressure — the retention window never filled, so no
	// invalidations — and the legacy total must equal their sum.
	if st.CapacityEvictions < 1 || st.Invalidations != 0 {
		t.Fatalf("cache stats %+v: want >=1 capacity eviction and 0 invalidations", st)
	}
	if st.Evictions != st.CapacityEvictions+st.Invalidations {
		t.Fatalf("cache stats %+v: evictions is not the sum of the split counters", st)
	}
}

// TestRetentionEvictionInvalidatesCache pins the no-dangling-reference
// invariant: when the retention window evicts a job, its cache entry
// dies with it — a resubmission re-executes instead of referencing a
// 404.
func TestRetentionEvictionInvalidatesCache(t *testing.T) {
	_, hs := startTestServer(t, Config{Workers: 1, MaxRetainedJobs: 1})
	base := hs.URL

	reqA, reqB := quickAsm(44), quickAsm(45)
	idA, _ := submit(t, base, reqA)
	waitDone(t, base, idA)
	coldA := fetchResult(t, base, idA)
	idB, _ := submit(t, base, reqB)
	waitDone(t, base, idB) // retiring B evicts A from retention and cache

	// The drop is attributed to retention invalidation, not LRU capacity
	// pressure — the split /healthz counters tell the causes apart.
	if st := healthCache(t, base); st.Invalidations < 1 || st.CapacityEvictions != 0 {
		t.Fatalf("cache stats %+v: want >=1 invalidation and 0 capacity evictions", st)
	}

	code, id, _, _, _ := submitRaw(t, base, reqA)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit of evicted form: status %d, want 202", code)
	}
	waitDone(t, base, id)
	if got := fetchResult(t, base, id); !bytes.Equal(got, coldA) {
		t.Fatal("re-executed result differs from the evicted original")
	}
	// The fresh completion re-indexed the form: now it hits again.
	if code, hitID, cache, _, _ := submitRaw(t, base, reqA); code != http.StatusOK || cache != "hit" || hitID != id {
		t.Fatalf("post-re-execution resubmit: status %d cache %q id %s, want 200/hit/%s", code, cache, hitID, id)
	}
}

// neutralFields is the test's own copy of the result-neutral
// classification; it must stay in lock-step with scrubNeutralFields.
var neutralFields = map[string]bool{"Workers": true, "ShotWorkers": true, "BatchLanes": true}

// affectingFields is every field whose value reaches the measured data
// (or its envelope) — the set the canonical form must cover.
var affectingFields = map[string]bool{
	"Type": true, "Seed": true, "Backend": true, "Qubit": true,
	"NumQubits": true, "AmplitudeError": true, "T1Sec": true, "T2Sec": true,
	"DetuningHz": true, "Rounds": true, "Replay": true, "DelaysCycles": true,
	"Scales": true, "Lengths": true, "Trials": true, "SeqSeed": true,
	"DataQubits": true, "WaitCycles": true, "Program": true,
}

// setNonZero sets v (a settable reflect.Value) to a deterministic
// non-zero value of its type.
func setNonZero(t *testing.T, v reflect.Value, field string) {
	t.Helper()
	switch v.Kind() {
	case reflect.String:
		v.SetString("zz-" + field)
	case reflect.Int, reflect.Int64:
		v.SetInt(7)
	case reflect.Float64:
		v.SetFloat(7.5)
	case reflect.Slice:
		v.Set(reflect.MakeSlice(v.Type(), 1, 1))
		setNonZero(t, v.Index(0), field)
	default:
		t.Fatalf("field %s: unhandled kind %s — extend setNonZero", field, v.Kind())
	}
}

// TestCanonicalFormCoversEveryRequestField is the guard behind the
// cache's soundness: every ExperimentRequest field must be explicitly
// classified as result-affecting (inside the canonical form) or
// result-neutral (scrubbed out, with a determinism proof — see
// scrubNeutralFields). It fails on any unclassified new field, proves
// the scrub zeroes exactly the neutral set, and checks the canonical
// bytes react to affecting fields and ignore neutral ones.
func TestCanonicalFormCoversEveryRequestField(t *testing.T) {
	rt := reflect.TypeOf(ExperimentRequest{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		switch {
		case neutralFields[f.Name] && affectingFields[f.Name]:
			t.Errorf("field %s is classified both neutral and affecting", f.Name)
		case !neutralFields[f.Name] && !affectingFields[f.Name]:
			t.Errorf("field %s is unclassified: add it to affectingFields, or — only with a "+
				"determinism proof that results are bit-identical for any value — to "+
				"scrubNeutralFields and neutralFields", f.Name)
		}
		// Every field must marshal: a json:"-" field would silently escape
		// the canonical form while still reaching execution.
		if tag, _, _ := strings.Cut(f.Tag.Get("json"), ","); tag == "-" || tag == "" {
			t.Errorf("field %s: canonical form requires an explicit json tag, got %q", f.Name, f.Tag.Get("json"))
		}
	}
	if t.Failed() {
		return
	}

	// scrubNeutralFields zeroes exactly the neutral set: start from a
	// request with every field non-zero, scrub, and diff field by field.
	full := ExperimentRequest{}
	fv := reflect.ValueOf(&full).Elem()
	for i := 0; i < rt.NumField(); i++ {
		setNonZero(t, fv.Field(i), rt.Field(i).Name)
	}
	scrubbed := full
	scrubNeutralFields(&scrubbed)
	sv := reflect.ValueOf(scrubbed)
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		isZero := sv.Field(i).IsZero()
		if neutralFields[name] && !isZero {
			t.Errorf("scrubNeutralFields left neutral field %s = %v", name, sv.Field(i))
		}
		if !neutralFields[name] && !reflect.DeepEqual(sv.Field(i).Interface(), fv.Field(i).Interface()) {
			t.Errorf("scrubNeutralFields modified affecting field %s", name)
		}
	}

	// Canonical bytes: mutating any affecting field changes them;
	// mutating any neutral field does not.
	base := ExperimentRequest{Type: "t1", Seed: 3, Rounds: 20}
	canon := func(r ExperimentRequest) string {
		b, err := canonicalExperiments([]ExperimentRequest{r})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	baseCanon := canon(base)
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		mut := base
		mv := reflect.ValueOf(&mut).Elem().Field(i)
		if mv.IsZero() {
			setNonZero(t, mv, name)
		} else {
			mv.SetZero()
		}
		changed := canon(mut) != baseCanon
		if affectingFields[name] && !changed {
			t.Errorf("mutating affecting field %s left the canonical bytes unchanged", name)
		}
		if neutralFields[name] && changed {
			t.Errorf("mutating neutral field %s changed the canonical bytes", name)
		}
	}
}

// TestNeutralFieldsAreExecuteByteNeutral is the other half of the
// neutral classification: not just excluded from the canonical form but
// provably absent from the result bytes — Execute returns identical
// documents for every Workers/ShotWorkers value (schema v3 scrubs their
// params echo).
func TestNeutralFieldsAreExecuteByteNeutral(t *testing.T) {
	env := expt.NewEnv()
	base := ExperimentRequest{Type: "t1", Seed: 13, Backend: "trajectory", Rounds: 30}
	want, err := Execute(context.Background(), env, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, mod := range []ExperimentRequest{
		{Type: "t1", Seed: 13, Backend: "trajectory", Rounds: 30, Workers: 1},
		{Type: "t1", Seed: 13, Backend: "trajectory", Rounds: 30, Workers: 3, ShotWorkers: 2},
		{Type: "t1", Seed: 13, Backend: "trajectory", Rounds: 30, ShotWorkers: 1},
		{Type: "t1", Seed: 13, Backend: "trajectory", Rounds: 30, BatchLanes: 8},
		{Type: "t1", Seed: 13, Backend: "trajectory", Rounds: 30, Workers: 2, ShotWorkers: 2, BatchLanes: 4},
	} {
		got, err := Execute(context.Background(), env, mod)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d shot_workers=%d batch_lanes=%d perturbed the result bytes:\nwant %s\ngot  %s",
				mod.Workers, mod.ShotWorkers, mod.BatchLanes, want, got)
		}
	}

	// A sharded trajectory run (rounds above the shard threshold) with
	// lanes enabled actually exercises the batched executor; its bytes
	// must still match the scalar run's exactly.
	shardedBase := ExperimentRequest{Type: "asm", Seed: 14, Backend: "trajectory",
		Program: "mov r15, 40\nQNopReg r15\nPulse {q0}, X90\nWait 4\nMPG {q0}, 300\nMD {q0}, r7\nhalt\n",
		Rounds:  600}
	want, err = Execute(context.Background(), env, shardedBase)
	if err != nil {
		t.Fatal(err)
	}
	shardedLanes := shardedBase
	shardedLanes.BatchLanes = 8
	got, err := Execute(context.Background(), env, shardedLanes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("batch_lanes=8 perturbed a sharded asm result:\nwant %s\ngot  %s", want, got)
	}
}
