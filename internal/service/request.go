package service

import (
	"context"
	"encoding/json"
	"fmt"

	"quma/internal/asm"
	"quma/internal/core"
	"quma/internal/expt"
	"quma/internal/qphys"
	"quma/internal/replay"
)

// ExperimentRequest is one experiment of a batch job: an experiment type
// plus the machine and sweep parameters. Zero-valued optional fields
// select the same defaults the experiment's DefaultXParams would — a
// request is a delta against the defaults, and its result is a pure
// function of the request fields.
type ExperimentRequest struct {
	// Type selects the experiment: t1, ramsey, echo, allxy, rabi, rb,
	// repcode, phasecode, or asm (a raw assembly program).
	Type string `json:"type"`

	// Seed seeds the machine PRNG (sweep points derive per-point seeds
	// from it). Identical (seed, params) requests return bit-identical
	// results.
	Seed int64 `json:"seed"`
	// Backend is the state substrate: "density" (default) or
	// "trajectory".
	Backend string `json:"backend,omitempty"`
	// Qubit is the driven qubit for single-qubit experiments.
	Qubit int `json:"qubit,omitempty"`
	// NumQubits sizes the register for asm programs (default 1).
	NumQubits int `json:"num_qubits,omitempty"`
	// AmplitudeError is the fractional pulse miscalibration ε.
	AmplitudeError float64 `json:"amp_error,omitempty"`
	// T1Sec/T2Sec/DetuningHz, when non-zero, replace the default
	// coherence parameters on every qubit.
	T1Sec      float64 `json:"t1_sec,omitempty"`
	T2Sec      float64 `json:"t2_sec,omitempty"`
	DetuningHz float64 `json:"detuning_hz,omitempty"`

	// Rounds is the averaging count (shots per sweep point; the shot
	// count for asm). Zero selects the experiment default.
	Rounds int `json:"rounds,omitempty"`
	// Workers bounds sweep parallelism inside the experiment (0 = one
	// per CPU). Results are identical for any value.
	Workers int `json:"workers,omitempty"`
	// ShotWorkers bounds shot-shard parallelism inside each sweep point
	// (0 = one per CPU). The shard plan is a pure function of the shot
	// count, so results are identical for any value.
	ShotWorkers int `json:"shot_workers,omitempty"`
	// BatchLanes, when > 1, runs groups of up to that many equal-size
	// shot shards in lockstep on the batched SoA trajectory executor
	// (one lane per shard — same derived seeds, same streams). Like
	// workers and shot_workers it is result-neutral: results are
	// bit-identical for any value, and the field is scrubbed from the
	// canonical form and the result's params echo.
	BatchLanes int `json:"batch_lanes,omitempty"`
	// Replay is the shot-replay engine mode: "", auto, compiled, interp,
	// off. Results are bit-identical for any value.
	Replay string `json:"replay,omitempty"`

	// DelaysCycles overrides the swept delays (t1/ramsey/echo).
	DelaysCycles []int `json:"delays_cycles,omitempty"`
	// Scales overrides the swept amplitude scales (rabi).
	Scales []float64 `json:"scales,omitempty"`
	// Lengths/Trials/SeqSeed configure rb sequence sampling.
	Lengths []int `json:"lengths,omitempty"`
	Trials  int   `json:"trials,omitempty"`
	SeqSeed int64 `json:"seq_seed,omitempty"`
	// DataQubits is the repcode distance (odd, 3-7; phasecode: 3).
	DataQubits int `json:"data_qubits,omitempty"`
	// WaitCycles is the repcode/phasecode memory time.
	WaitCycles int `json:"wait_cycles,omitempty"`
	// Program is the assembly source for asm requests.
	Program string `json:"program,omitempty"`
}

// ResultSchemaVersion is the version stamped into every result envelope.
// It bumps when the bytes a fixed request produces change — the service's
// byte-identity contract is per schema version, not forever.
//
//	v1: initial envelope {type, result}.
//	v2: shot-sharded replay — requests whose per-point shot count exceeds
//	    expt.ShotShardSize consume a sharded PRNG stream layout (one
//	    derived stream per fixed shard) instead of the single per-point
//	    stream, changing their sampled results (never the statistics:
//	    internal/conformance pins 5σ agreement against v1's layout).
//	    Shot counts at or below the threshold are byte-identical to v1.
//	    Adds the shot_workers request field, which — like workers —
//	    never affects the measured data, only its echo in the result's
//	    params block.
//	v3: result-neutral fields are scrubbed from the result's params echo —
//	    workers and shot_workers render as 0 no matter what the request
//	    set, so the result bytes (not just the measured data) are a pure
//	    function of the canonical request form. This is what makes the
//	    content-addressed result cache sound: two requests that differ
//	    only in scheduling knobs share one canonical hash and one result
//	    document. Requests that never set those fields are byte-identical
//	    to v2. batch_lanes (added later, no schema bump) joins the
//	    neutral set: lane-batched execution preserves every shard's
//	    stream bit-for-bit, so the field can never reach the result.
const ResultSchemaVersion = 3

// scrubNeutralFields zeroes the result-neutral request fields in place.
// These are the fields that can never change the measured data — the
// sweep/shard determinism contracts guarantee results are bit-identical
// for any Workers/ShotWorkers value — so they are excluded from the
// canonical request form that the idempotency hash, the journal, and the
// content-addressed result cache all key on. Every other field is
// result-affecting and must stay inside the canonical form: a field
// added here without a determinism proof would collide distinct results
// under one cache key. TestCanonicalFormCoversEveryRequestField is the
// guard — it fails on any new ExperimentRequest field until the field is
// classified, and proves the neutral set is exactly this one.
func scrubNeutralFields(r *ExperimentRequest) {
	r.Workers = 0
	r.ShotWorkers = 0
	r.BatchLanes = 0
}

// canonicalExperiments builds the canonical request bytes for a batch:
// each experiment with its result-neutral fields scrubbed, re-marshaled
// from the decoded structs so field order and formatting are fixed.
// Byte-equal canonical forms mean requests whose results are identical
// by construction. These bytes are what the journal re-executes at
// recovery (sound because the scrubbed fields are result-neutral) and
// what the idempotency/cache hash covers.
func canonicalExperiments(exps []ExperimentRequest) ([]byte, error) {
	canon := make([]ExperimentRequest, len(exps))
	copy(canon, exps)
	for i := range canon {
		scrubNeutralFields(&canon[i])
	}
	return json.Marshal(canon)
}

// scrubResultParams zeroes the result-neutral knobs in a result's params
// echo before marshaling, so the served bytes match what the canonical
// (scrubbed) form of the request would produce — the other half of the
// schema-v3 contract. The experiment layer guarantees the measured data
// is already identical; only the verbatim echo needed scrubbing.
func scrubResultParams(res any) {
	switch v := res.(type) {
	case *expt.T1Result:
		v.Params.Workers, v.Params.ShotWorkers, v.Params.BatchLanes = 0, 0, 0
	case *expt.RamseyResult:
		v.Params.Workers, v.Params.ShotWorkers, v.Params.BatchLanes = 0, 0, 0
	case *expt.EchoResult:
		v.Params.Workers, v.Params.ShotWorkers, v.Params.BatchLanes = 0, 0, 0
	case *expt.AllXYResult:
		v.Params.Workers, v.Params.ShotWorkers, v.Params.BatchLanes = 0, 0, 0
	case *expt.RabiResult:
		v.Params.Workers, v.Params.ShotWorkers, v.Params.BatchLanes = 0, 0, 0
	case *expt.RBResult:
		v.Params.Workers, v.Params.ShotWorkers, v.Params.BatchLanes = 0, 0, 0
	case *expt.RepCodeResult:
		v.Params.Workers, v.Params.ShotWorkers, v.Params.BatchLanes = 0, 0, 0
	case *expt.PhaseCodeResult:
		v.Params.Workers, v.Params.ShotWorkers, v.Params.BatchLanes = 0, 0, 0
	case *expt.ProgramResult:
		v.Params.ShotWorkers, v.Params.BatchLanes = 0, 0
	}
}

// maxProgramBytes bounds an asm request's program text: validation
// assembles it synchronously on the submit path, so the size must be
// capped before, not after.
const maxProgramBytes = 256 << 10

// experimentTypes is the closed set of request types.
var experimentTypes = map[string]bool{
	"t1": true, "ramsey": true, "echo": true, "allxy": true, "rabi": true,
	"rb": true, "repcode": true, "phasecode": true, "asm": true,
}

// FieldError locates one validation failure inside a batch.
type FieldError struct {
	// Index is the experiment's position in the batch.
	Index int `json:"index"`
	// Field names the offending request field (JSON name).
	Field string `json:"field"`
	// Message says what is wrong with it.
	Message string `json:"message"`
}

func (e FieldError) Error() string {
	return fmt.Sprintf("experiments[%d].%s: %s", e.Index, e.Field, e.Message)
}

// Validate checks one request, reporting every problem as a FieldError
// carrying the batch index i. Validation is complete at submit time: an
// accepted job can only fail on execution-time physics/timeout errors,
// never on malformed parameters.
func (r ExperimentRequest) Validate(i int) []FieldError {
	var errs []FieldError
	add := func(field, format string, args ...any) {
		errs = append(errs, FieldError{Index: i, Field: field, Message: fmt.Sprintf(format, args...)})
	}
	if !experimentTypes[r.Type] {
		add("type", "unknown experiment type %q", r.Type)
		return errs
	}
	switch r.Backend {
	case "", string(core.BackendDensity), string(core.BackendTrajectory):
	default:
		add("backend", "unknown backend %q (want %q or %q)", r.Backend, core.BackendDensity, core.BackendTrajectory)
	}
	if _, err := replay.ParseMode(r.Replay); err != nil {
		add("replay", "%v", err)
	}
	if r.Rounds < 0 {
		add("rounds", "must be non-negative (0 selects the default)")
	}
	if r.ShotWorkers < 0 {
		add("shot_workers", "must be non-negative (0 selects one worker per CPU)")
	}
	if r.BatchLanes < 0 {
		add("batch_lanes", "must be non-negative (0 and 1 select scalar shard execution)")
	}
	maxQ := 8
	if core.Backend(r.Backend) == core.BackendTrajectory {
		maxQ = 16
	}
	if r.Qubit < 0 || r.Qubit >= maxQ {
		add("qubit", "must be in 0..%d for backend %q", maxQ-1, r.Backend)
	}
	if r.Seed < 0 {
		add("seed", "must be non-negative (machine PRNG seed)")
	}
	if r.T1Sec < 0 {
		add("t1_sec", "must be non-negative")
	}
	if r.T2Sec < 0 {
		add("t2_sec", "must be non-negative")
	}
	switch r.Type {
	case "rb":
		if len(r.Lengths) > 0 && len(r.Lengths) < 3 {
			add("lengths", "need at least 3 sequence lengths, got %d", len(r.Lengths))
		}
		if r.Trials < 0 {
			add("trials", "must be non-negative (0 selects the default)")
		}
	case "rabi":
		if len(r.Scales) > 0 && len(r.Scales) < 8 {
			add("scales", "need at least 8 amplitude scales, got %d", len(r.Scales))
		}
	case "repcode":
		if d := r.DataQubits; d != 0 && (d%2 == 0 || d < 3 || d > 7) {
			add("data_qubits", "must be odd in 3..7, got %d", d)
		}
		if r.DataQubits >= 5 && core.Backend(r.Backend) != core.BackendTrajectory {
			add("backend", "distance-%d repcode (%d qubits) requires the trajectory backend", r.DataQubits, 2*r.DataQubits-1)
		}
	case "phasecode":
		if r.DataQubits != 0 && r.DataQubits != 3 {
			add("data_qubits", "the phase code is fixed at 3 data qubits, got %d", r.DataQubits)
		}
	case "asm":
		// Validation assembles and discards; execution re-assembles
		// through the Env cache. The duplicate is the accepted price of
		// complete submit-time validation — bounded by maxProgramBytes,
		// and only the first sighting of a program text pays it twice.
		if r.Program == "" {
			add("program", "must contain an assembly program")
		} else if len(r.Program) > maxProgramBytes {
			add("program", "is %d bytes, limit is %d", len(r.Program), maxProgramBytes)
		} else if _, err := asm.Assemble(r.Program); err != nil {
			add("program", "does not assemble: %v", err)
		}
		if r.NumQubits < 0 || r.NumQubits > maxQ {
			add("num_qubits", "must be in 0..%d for backend %q", maxQ, r.Backend)
		}
	}
	return errs
}

// config builds the machine configuration a request describes. It must
// stay a pure function of the request: the config (and the params below)
// fully determine the result.
func (r ExperimentRequest) config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = r.Seed
	cfg.Backend = core.Backend(r.Backend)
	cfg.AmplitudeError = r.AmplitudeError
	if r.Type == "asm" && r.NumQubits > 0 {
		cfg.NumQubits = r.NumQubits
	}
	if r.T1Sec != 0 || r.T2Sec != 0 || r.DetuningHz != 0 {
		qp := qphys.DefaultQubitParams()
		if r.T1Sec != 0 {
			qp.T1 = r.T1Sec
		}
		if r.T2Sec != 0 {
			qp.T2 = r.T2Sec
		}
		qp.FreqDetuningHz = r.DetuningHz
		n := cfg.NumQubits
		if r.Type == "repcode" {
			n = 2*r.dataQubits() - 1
		} else if r.Type == "phasecode" {
			n = 5
		} else if r.Qubit >= n {
			n = r.Qubit + 1
		}
		cfg.Qubit = nil
		for i := 0; i < n; i++ {
			cfg.Qubit = append(cfg.Qubit, qp)
		}
	}
	return cfg
}

func (r ExperimentRequest) dataQubits() int {
	if r.DataQubits == 0 {
		return 3
	}
	return r.DataQubits
}

func (r ExperimentRequest) sweepParams() expt.SweepParams {
	p := expt.DefaultSweepParams()
	p.Qubit = r.Qubit
	if r.Rounds > 0 {
		p.Rounds = r.Rounds
	}
	if len(r.DelaysCycles) > 0 {
		p.DelaysCycles = r.DelaysCycles
	}
	p.Workers = r.Workers
	p.ShotWorkers = r.ShotWorkers
	p.BatchLanes = r.BatchLanes
	p.Replay = replay.Mode(r.Replay)
	return p
}

// Execute runs one validated request on the shared environment and
// returns its result marshaled to JSON. The bytes are deterministic:
// encoding/json is deterministic for the fixed result struct types, and
// every result field is (by the expt contracts) a pure function of the
// request. ctx preempts the experiment mid-sweep (see expt.Env); a
// preempted Execute returns the wrapped ctx error and no result.
func Execute(ctx context.Context, env *expt.Env, r ExperimentRequest) (json.RawMessage, error) {
	var (
		res any
		err error
	)
	cfg := r.config()
	switch r.Type {
	case "t1":
		res, err = env.RunT1(ctx, cfg, r.sweepParams())
	case "ramsey":
		res, err = env.RunRamsey(ctx, cfg, r.sweepParams())
	case "echo":
		res, err = env.RunEcho(ctx, cfg, r.sweepParams())
	case "allxy":
		p := expt.DefaultAllXYParams()
		p.Qubit = r.Qubit
		if r.Rounds > 0 {
			p.Rounds = r.Rounds
		}
		p.Workers = r.Workers
		p.ShotWorkers = r.ShotWorkers
		p.BatchLanes = r.BatchLanes
		p.Replay = replay.Mode(r.Replay)
		res, err = env.RunAllXY(ctx, cfg, p)
	case "rabi":
		p := expt.DefaultRabiParams()
		p.Qubit = r.Qubit
		if r.Rounds > 0 {
			p.Rounds = r.Rounds
		}
		if len(r.Scales) > 0 {
			p.Scales = r.Scales
		}
		p.Workers = r.Workers
		p.ShotWorkers = r.ShotWorkers
		p.BatchLanes = r.BatchLanes
		p.Replay = replay.Mode(r.Replay)
		res, err = env.RunRabi(ctx, cfg, p)
	case "rb":
		p := expt.DefaultRBParams()
		p.Qubit = r.Qubit
		if r.Rounds > 0 {
			p.Rounds = r.Rounds
		}
		if len(r.Lengths) > 0 {
			p.Lengths = r.Lengths
		}
		if r.Trials > 0 {
			p.Trials = r.Trials
		}
		if r.SeqSeed != 0 {
			p.Seed = r.SeqSeed
		}
		p.Workers = r.Workers
		p.ShotWorkers = r.ShotWorkers
		p.BatchLanes = r.BatchLanes
		p.Replay = replay.Mode(r.Replay)
		res, err = env.RunRB(ctx, cfg, p)
	case "repcode", "phasecode":
		p := expt.DefaultRepCodeParams()
		p.DataQubits = r.DataQubits
		if r.Rounds > 0 {
			p.Rounds = r.Rounds
		}
		if r.WaitCycles > 0 {
			p.WaitCycles = r.WaitCycles
		}
		p.Workers = r.Workers
		p.ShotWorkers = r.ShotWorkers
		p.BatchLanes = r.BatchLanes
		p.Replay = replay.Mode(r.Replay)
		if r.Type == "repcode" {
			res, err = env.RunRepCode(ctx, cfg, p)
		} else {
			res, err = env.RunPhaseCode(ctx, cfg, p)
		}
	case "asm":
		shots := r.Rounds
		if shots == 0 {
			shots = 100
		}
		res, err = env.RunProgram(ctx, cfg, expt.ProgramParams{
			Source:      r.Program,
			Shots:       shots,
			Replay:      replay.Mode(r.Replay),
			ShotWorkers: r.ShotWorkers,
			BatchLanes:  r.BatchLanes,
		})
	default:
		return nil, fmt.Errorf("service: unknown experiment type %q", r.Type)
	}
	if err != nil {
		return nil, err
	}
	scrubResultParams(res)
	return json.Marshal(struct {
		Type   string `json:"type"`
		Schema int    `json:"schema"`
		Result any    `json:"result"`
	}{Type: r.Type, Schema: ResultSchemaVersion, Result: res})
}
