package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

func mkJob(id, class string) *job {
	return &job{id: id, class: class, done: make(chan struct{})}
}

func popAll(t *testing.T, q *fairQueue, n int) []string {
	t.Helper()
	var order []string
	for i := 0; i < n; i++ {
		jb, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue closed early", i)
		}
		order = append(order, jb.id)
	}
	return order
}

// TestFairQueueStrideOrder pins the dequeue schedule by hand: with
// strides 1 (interactive) and 3 (batch), a mixed backlog drains
// interactive-heavy but never starves batch, and ties break toward
// interactive.
func TestFairQueueStrideOrder(t *testing.T) {
	q := newFairQueue()
	for _, j := range []*job{
		mkJob("b1", ClassBatch), mkJob("i1", ClassInteractive),
		mkJob("b2", ClassBatch), mkJob("i2", ClassInteractive),
		mkJob("i3", ClassInteractive), mkJob("b3", ClassBatch),
	} {
		q.push(j)
	}
	// pass starts [0,0]: tie → i1 (1,0); b1 (1,3); i2 (2,3); i3 (3,3);
	// interactive lane empty → b2 (3,6); b3.
	want := []string{"i1", "b1", "i2", "i3", "b2", "b3"}
	if got := popAll(t, q, 6); !reflect.DeepEqual(got, want) {
		t.Fatalf("dequeue order %v, want %v", got, want)
	}
}

// TestFairQueueDeterministic runs the same arrival sequence through two
// queues: the schedule is a pure function of arrivals, so the orders
// must match exactly.
func TestFairQueueDeterministic(t *testing.T) {
	arrivals := []string{"b", "b", "i", "b", "i", "i", "b", "i", "b", "i", "i", "b"}
	runOnce := func() []string {
		q := newFairQueue()
		for i, c := range arrivals {
			class := ClassBatch
			if c == "i" {
				class = ClassInteractive
			}
			q.push(mkJob(string(rune('a'+i)), class))
		}
		return popAll(t, q, len(arrivals))
	}
	first := runOnce()
	for i := 0; i < 5; i++ {
		if got := runOnce(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d order %v differs from first %v", i, got, first)
		}
	}
}

// TestFairQueueInteractiveRatio checks the contention guarantee: with
// both lanes backlogged, interactive dequeues ~3x as often as batch —
// and batch still makes steady progress.
func TestFairQueueInteractiveRatio(t *testing.T) {
	q := newFairQueue()
	for i := 0; i < 12; i++ {
		q.push(mkJob(string(rune('A'+i)), ClassInteractive))
		q.push(mkJob(string(rune('a'+i)), ClassBatch))
	}
	order := popAll(t, q, 16) // both lanes stay non-empty throughout
	inter := 0
	for _, id := range order {
		if id[0] >= 'A' && id[0] <= 'Z' {
			inter++
		}
	}
	batch := len(order) - inter
	if inter != 12 || batch != 4 {
		t.Fatalf("first 16 dequeues: %d interactive / %d batch (%v), want 12/4 (3:1)", inter, batch, order)
	}
}

// TestFairQueueEmptyLaneCatchUp pins the anti-starvation refinement: a
// lane that arrives after an idle stretch is caught up to the active
// floor — it gets priority from its stride, not unbounded credit from
// its absence.
func TestFairQueueEmptyLaneCatchUp(t *testing.T) {
	q := newFairQueue()
	for i := 0; i < 4; i++ {
		q.push(mkJob(string(rune('a'+i)), ClassBatch))
	}
	if got := popAll(t, q, 2); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("warmup order %v", got)
	}
	// batch pass is now 6; the arriving interactive lane catches up to 6
	// instead of entering at 0 with 6 dequeues of credit.
	q.push(mkJob("i1", ClassInteractive))
	q.push(mkJob("i2", ClassInteractive))
	want := []string{"i1", "c", "i2", "d"} // (6,6) tie→i1 (7,6); c (7,9); i2 (8,9); d
	if got := popAll(t, q, 4); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-idle order %v, want %v", got, want)
	}
}

// TestFairQueueCloseDrains checks shutdown: close stops intake-side
// waiting, the backlog still drains in order, and then pops report
// closed.
func TestFairQueueCloseDrains(t *testing.T) {
	q := newFairQueue()
	q.push(mkJob("a", ClassBatch))
	q.push(mkJob("b", ClassBatch))
	q.close()
	if got := popAll(t, q, 2); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("drain order %v", got)
	}
	if jb, ok := q.pop(); ok {
		t.Fatalf("pop after drain returned %v, want closed", jb.id)
	}
}

// TestFairDequeueServiceOrder is the end-to-end fairness check: the
// whole backlog is queued before Start (New accepts submissions with no
// workers running), so the single worker's completion order is exactly
// the stride schedule — deterministic all the way through the HTTP
// layer.
func TestFairDequeueServiceOrder(t *testing.T) {
	key := "ik-ratio"
	s := New(Config{
		Workers: 1,
		Tenants: []TenantConfig{{Name: "ops", Key: key, Class: ClassInteractive}},
	})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)

	var ids []string
	classes := []string{"b", "i", "b", "i", "i", "b"}
	for i, c := range classes {
		body, _ := json.Marshal(quickAsm(int64(80 + i)))
		req, _ := http.NewRequest("POST", hs.URL+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if c == "i" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, acc.ID)
	}
	s.Start()
	t.Cleanup(s.Drain)
	for _, id := range ids {
		waitDone(t, hs.URL, id)
	}
	s.mu.Lock()
	order := append([]string(nil), s.retired...)
	s.mu.Unlock()
	// With one worker and the full backlog present at Start, completion
	// order is the stride schedule over arrival order b,i,b,i,i,b:
	// i1, b1, i2, i3, b2, b3 (see TestFairQueueStrideOrder).
	want := []string{ids[1], ids[0], ids[3], ids[4], ids[2], ids[5]}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("completion order %v, want %v (classes %v, ids %v)", order, want, classes, ids)
	}
}
