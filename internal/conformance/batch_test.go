package conformance

// Batched-executor conformance: the differential layer for the
// lockstep shot-batched SoA trajectory executor. Lane grouping is a
// pure scheduling decision — one lane is one shot shard, each lane
// keeps its own DeriveSeed(pointSeed, k) PRNG — so for every corpus
// program the measurement stream must be byte-identical across every
// lane width, every ShotWorkers value, and every replay mode. ModeOff
// and ModeInterp cannot batch (they demote lanes to scalar shards),
// which is itself part of the contract: asking for lanes there must
// not change a single byte either.
//
// CI runs this file under -race in the chaos smoke step.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"quma/internal/core"
	"quma/internal/expt"
)

// TestBatchedLaneConformance runs generated programs from both
// populations on the trajectory backend at a sharded shot count
// (plan [256 256 40]: one multi-lane group plus a remainder group)
// and asserts the stream hash never moves off the scalar-sharded
// reference for any mode × lanes × ShotWorkers combination.
func TestBatchedLaneConformance(t *testing.T) {
	env := expt.NewEnv()
	for _, seed := range committedSeeds[:4] {
		for _, kind := range []Kind{Safe, Deterministic} {
			t.Run(fmt.Sprintf("seed-%d/%s", seed, kind), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed ^ int64(kind)<<32))
				nQubits := 2 + rng.Intn(2)
				src := Generate(rng, kind, nQubits, 8+rng.Intn(8))
				cfg := confConfig(kind, core.BackendTrajectory, nQubits, seed*1000003+int64(kind))

				ref, err := env.RunProgram(context.Background(), cfg,
					expt.ProgramParams{Source: src, Shots: shardShots, Replay: allModes[0]})
				if err != nil {
					t.Fatalf("scalar reference: %v\nprogram:\n%s", err, src)
				}
				for _, mode := range allModes {
					for _, lanes := range []int{1, 2, 8} {
						for _, sw := range []int{1, 2, runtime.NumCPU()} {
							res, err := env.RunProgram(context.Background(), cfg,
								expt.ProgramParams{Source: src, Shots: shardShots,
									Replay: mode, ShotWorkers: sw, BatchLanes: lanes})
							if err != nil {
								t.Fatalf("mode %s lanes %d ShotWorkers %d: %v\nprogram:\n%s",
									mode, lanes, sw, err, src)
							}
							if res.StreamHash != ref.StreamHash {
								t.Fatalf("mode %s lanes %d ShotWorkers %d: stream %x, want %x\nprogram:\n%s",
									mode, lanes, sw, res.StreamHash, ref.StreamHash, src)
							}
						}
					}
				}
			})
		}
	}
}
