// Package conformance holds the randomized differential test layer for
// the execution matrix: seeded generators of assembly programs, run
// across every {state backend} × {replay mode} combination and checked
// for agreement — the quantum-control analogue of the randomized
// instruction suites that keep CPU emulators honest against their
// reference implementations.
//
// Three program populations cover the matrix's failure modes:
//
//   - replay-safe programs (pulses, waits, CNOTs, measurements whose
//     results are never consumed classically): shots past the detection
//     prefix replay — the differential run catches any divergence
//     between full simulation, interpreted replay, and compiled replay;
//   - replay-unsafe programs (measurement-dependent branches and
//     arithmetic): the engine must detect them and fall back, with
//     results identical across modes anyway;
//   - deterministic programs (π pulses and CNOTs on noiseless qubits
//     with noiseless readout): every backend and every mode must agree
//     exactly, shot for shot — the only population where cross-backend
//     equality is exact rather than statistical.
//
// Generation is seeded and the seed list is committed in the test file,
// so any failure reproduces bit-for-bit.
package conformance

import (
	"fmt"
	"math/rand"
	"strings"
)

// Kind selects a generated program population.
type Kind int

const (
	// Safe programs are feedback-free: replay-eligible by construction.
	Safe Kind = iota
	// Unsafe programs consume measurement results classically
	// (conditional pulses, tainted arithmetic): the engine must fall
	// back to full simulation without changing a single result bit.
	Unsafe
	// Deterministic programs use only π pulses and CNOTs, for noiseless
	// machines where every measurement outcome is certain: the exact
	// cross-backend population.
	Deterministic
)

func (k Kind) String() string {
	switch k {
	case Safe:
		return "safe"
	case Unsafe:
		return "unsafe"
	case Deterministic:
		return "deterministic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// pulseNames is the Table 1 library (see awg.StandardLibrary); the
// deterministic population uses only the π subset, which maps
// computational basis states to computational basis states.
var (
	pulseNames = []string{"I", "X180", "X90", "Xm90", "Y180", "Y90", "Ym90"}
	piPulses   = []string{"X180", "Y180"}
)

// Generate emits one random program over nQubits qubits with roughly
// nOps body operations, driven entirely by rng — the same (rng state,
// arguments) always yields the same text. Every wait and measurement
// window is a multiple of 4 cycles (one SSB period at the default
// modulation), so generated shot periods stay phase-aligned and safe
// programs really are detected safe.
func Generate(rng *rand.Rand, kind Kind, nQubits, nOps int) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("mov r15, 4000")
	if kind == Unsafe {
		w("mov r6, 0")
	}
	w("QNopReg r15")

	// For the deterministic population the generator tracks the
	// classical bit-state (π pulses and CNOTs permute basis states), so
	// it can emit an unconditional reset after readout: noiseless qubits
	// never relax, and without the reset the measured-and-kept state
	// would alternate across shots instead of repeating.
	bits := make([]bool, nQubits)
	labels := 0
	measured := false
	for i := 0; i < nOps; i++ {
		switch op := rng.Intn(8); {
		case op < 3: // single-qubit pulse
			q := rng.Intn(nQubits)
			name := pulseNames[rng.Intn(len(pulseNames))]
			if kind == Deterministic {
				name = piPulses[rng.Intn(len(piPulses))]
				bits[q] = !bits[q]
			}
			w("Pulse {q%d}, %s", q, name)
			w("Wait 4")
		case op < 4: // idle
			w("Wait %d", 4*(1+rng.Intn(5)))
		case op < 6 && nQubits >= 2: // two-qubit gate via microcode
			a := rng.Intn(nQubits) // target
			bq := rng.Intn(nQubits - 1)
			if bq >= a {
				bq++
			}
			bits[a] = bits[a] != bits[bq]
			w("Apply2 CNOT, q%d, q%d", a, bq)
		case op < 7 && kind != Deterministic: // mid-circuit measurement
			q := rng.Intn(nQubits)
			w("MPG {q%d}, 300", q)
			w("MD {q%d}, r7", q)
			w("Wait 340")
			measured = true
			if kind == Unsafe {
				// Consume the result: half the time a feedback branch
				// (the schedule then really varies shot to shot), half
				// the time tainted arithmetic (schedule-invariant, but
				// the taint tracker must still refuse to replay).
				if rng.Intn(2) == 0 {
					labels++
					w("beq r7, r6, Skip_%d", labels)
					w("Pulse {q%d}, X180", q)
					w("Wait 4")
					w("Skip_%d:", labels)
				} else {
					w("add r9, r9, r7")
				}
			}
		default:
			w("Wait 4")
		}
	}
	// An Unsafe program must consume at least one measurement; if the
	// draw above never measured, append the minimal feedback tail.
	if kind == Unsafe && !measured {
		w("MPG {q0}, 300")
		w("MD {q0}, r7")
		w("Wait 340")
		w("add r9, r9, r7")
	}
	// Epilogue: read out every qubit (results flow to the engine's
	// measurement stream; nothing classical consumes them).
	for q := 0; q < nQubits; q++ {
		w("MPG {q%d}, 300", q)
		w("MD {q%d}, r7", q)
		w("Wait 340")
	}
	// Deterministic reset: return every |1⟩ qubit to ground with an
	// unconditional flip — valid because its post-measurement state is
	// known at generation time — so consecutive shots are identical.
	if kind == Deterministic {
		for q, set := range bits {
			if set {
				w("Pulse {q%d}, X180", q)
				w("Wait 4")
			}
		}
	}
	w("halt")
	return b.String()
}
