package conformance

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"quma/internal/core"
	"quma/internal/expt"
	"quma/internal/qphys"
	"quma/internal/replay"
)

// committedSeeds is the pinned generator seed list: every program the
// suite has ever run is reproducible from (seed, kind) alone. When a
// differential failure is found — here or by ad-hoc exploration — add
// its seed so the regression stays covered.
var committedSeeds = []int64{1, 2, 3, 5, 8, 13, 21, 34}

// allModes is the full replay axis of the execution matrix; with both
// backends it spans the 8 combinations the acceptance criteria name.
var allModes = []replay.Mode{replay.ModeOff, replay.ModeInterp, replay.ModeAuto, replay.ModeCompiled}

var backends = []core.Backend{core.BackendDensity, core.BackendTrajectory}

const confShots = 120

// confConfig builds the machine config for a population: deterministic
// programs run on noiseless qubits with noiseless readout (outcomes are
// certain), the stochastic populations on the default noisy machine.
func confConfig(kind Kind, backend core.Backend, nQubits int, seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Backend = backend
	cfg.NumQubits = nQubits
	cfg.Seed = seed
	if kind == Deterministic {
		cfg.Qubit = make([]qphys.QubitParams, nQubits) // zero value = noiseless
		cfg.Readout.NoiseSigma = 0
	}
	return cfg
}

// runMatrix executes one program across every mode on one backend,
// asserting the replay contract: all modes bit-identical, and the
// safety detector's verdict matches the population.
func runMatrix(t *testing.T, env *expt.Env, cfg core.Config, src string, kind Kind) *expt.ProgramResult {
	t.Helper()
	var ref *expt.ProgramResult
	for _, mode := range allModes {
		res, err := env.RunProgram(context.Background(), cfg, expt.ProgramParams{Source: src, Shots: confShots, Replay: mode})
		if err != nil {
			t.Fatalf("mode %s: %v\nprogram:\n%s", mode, err, src)
		}
		if mode != replay.ModeOff {
			switch kind {
			case Safe, Deterministic:
				if !res.Safe {
					t.Errorf("mode %s: %s program detected unsafe\nprogram:\n%s", mode, kind, src)
				}
			case Unsafe:
				if res.Safe {
					t.Errorf("mode %s: %s program detected safe\nprogram:\n%s", mode, kind, src)
				}
			}
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.StreamHash != ref.StreamHash {
			t.Fatalf("mode %s: measurement stream %x, mode %s stream %x\nprogram:\n%s",
				mode, res.StreamHash, allModes[0], ref.StreamHash, src)
		}
		for i := range ref.Ones {
			if res.Ones[i] != ref.Ones[i] {
				t.Fatalf("mode %s: ones[%d] = %d, want %d\nprogram:\n%s", mode, i, res.Ones[i], ref.Ones[i], src)
			}
		}
	}
	return ref
}

// TestDifferentialConformance is the randomized differential suite: for
// every committed seed and population, the program runs across all 8
// backend × replay-mode combinations. Within a backend, all four modes
// must be bit-identical (same measurement stream hash, same counts) —
// for the trajectory backend this pins the Monte-Carlo trajectory
// itself, draw for draw. Across backends, deterministic programs must
// agree exactly; stochastic ones within a 5σ binomial envelope (the
// density backend projects from exact mixed-state probabilities, the
// trajectory backend from sampled pure states, so their PRNG streams
// diverge and only the physics — the means — must agree).
func TestDifferentialConformance(t *testing.T) {
	env := expt.NewEnv()
	for _, seed := range committedSeeds {
		for _, kind := range []Kind{Safe, Unsafe, Deterministic} {
			t.Run(fmt.Sprintf("seed-%d/%s", seed, kind), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed ^ int64(kind)<<32))
				nQubits := 2 + rng.Intn(2)
				src := Generate(rng, kind, nQubits, 8+rng.Intn(8))
				machineSeed := seed*1000003 + int64(kind)

				results := make(map[core.Backend]*expt.ProgramResult)
				for _, b := range backends {
					results[b] = runMatrix(t, env, confConfig(kind, b, nQubits, machineSeed), src, kind)
				}
				den, trj := results[core.BackendDensity], results[core.BackendTrajectory]
				if len(den.Ones) != len(trj.Ones) || den.MDPerShot != trj.MDPerShot {
					t.Fatalf("backends disagree on measurement count: density %d, trajectory %d", den.MDPerShot, trj.MDPerShot)
				}
				if kind == Deterministic {
					// Outcomes are certain: the backends must agree shot
					// for shot, and every column must be all-0 or all-1.
					if den.StreamHash != trj.StreamHash {
						t.Fatalf("deterministic program: density stream %x != trajectory %x\nprogram:\n%s",
							den.StreamHash, trj.StreamHash, src)
					}
					for i, n := range den.Ones {
						if n != 0 && n != confShots {
							t.Errorf("deterministic ones[%d] = %d/%d, want 0 or all\nprogram:\n%s", i, n, confShots, src)
						}
					}
					return
				}
				// Stochastic cross-backend agreement: per measurement
				// position, the |1⟩ fractions differ by at most 5σ of
				// the pooled binomial spread (plus a floor for the
				// p→0/1 corners). Seeds are pinned, so this never
				// flakes: it either always passes or caught something.
				for i := range den.Ones {
					pd := float64(den.Ones[i]) / confShots
					pt := float64(trj.Ones[i]) / confShots
					pool := (pd + pt) / 2
					sigma := math.Sqrt(2 * pool * (1 - pool) / confShots)
					if tol := 5*sigma + 0.02; math.Abs(pd-pt) > tol {
						t.Errorf("ones[%d]: density %.3f vs trajectory %.3f exceeds %.3f\nprogram:\n%s",
							i, pd, pt, tol, src)
					}
				}
			})
		}
	}
}
