package conformance

// Shot-sharding conformance: the differential layer for the shot-shard
// engine (expt.ShotShardPlan). Shot counts above expt.ShotShardSize run
// one PRNG stream per fixed shard instead of the legacy single stream,
// so the contract splits in two:
//
//   - bit-identity across ShotWorkers and replay modes for the same
//     shard plan (the plan, seeds, and merge order are pure functions of
//     the shot count);
//   - agreement with the unsharded single stream: exact for the
//     deterministic population (outcomes are certain, PRNG layout can't
//     matter), statistical at 5σ for the stochastic one (the layouts
//     sample different variates of the same distribution).
//
// CI runs this file under -race in the chaos smoke step.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"quma/internal/asm"
	"quma/internal/core"
	"quma/internal/expt"
	"quma/internal/replay"
)

// shardShots exceeds expt.ShotShardSize so the automatic plan engages
// (3 shards), while staying affordable across the mode × worker matrix.
const shardShots = 552

// runShardMatrix executes one program at a sharded shot count across
// every replay mode and a ladder of ShotWorkers values, asserting all
// combinations produce the identical measurement stream.
func runShardMatrix(t *testing.T, env *expt.Env, cfg core.Config, src string) *expt.ProgramResult {
	t.Helper()
	var ref *expt.ProgramResult
	for _, mode := range allModes {
		for _, sw := range []int{1, 2, runtime.NumCPU()} {
			res, err := env.RunProgram(context.Background(), cfg,
				expt.ProgramParams{Source: src, Shots: shardShots, Replay: mode, ShotWorkers: sw})
			if err != nil {
				t.Fatalf("mode %s ShotWorkers %d: %v\nprogram:\n%s", mode, sw, err, src)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.StreamHash != ref.StreamHash {
				t.Fatalf("mode %s ShotWorkers %d: stream %x, want %x\nprogram:\n%s",
					mode, sw, res.StreamHash, ref.StreamHash, src)
			}
		}
	}
	return ref
}

// unshardedOnes reruns the program as the pre-sharding engine would —
// one machine seeded cfg.Seed, one replay.Run over all shots — and
// returns the per-position |1⟩ counts.
func unshardedOnes(t *testing.T, cfg core.Config, src string, shots int) []int {
	t.Helper()
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var ones []int
	_, err = replay.Run(context.Background(), m, prog, replay.Options{Shots: shots, OnShot: func(_ int, md []replay.MD) {
		for i, r := range md {
			if i == len(ones) {
				ones = append(ones, 0)
			}
			ones[i] += r.Result
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	return ones
}

// TestShardedDifferentialConformance runs generated programs from the
// safe and deterministic populations at a sharded shot count: all
// mode × ShotWorkers combinations must agree bit for bit, deterministic
// programs must match the unsharded stream exactly, and stochastic ones
// within 5σ of the pooled binomial spread.
func TestShardedDifferentialConformance(t *testing.T) {
	env := expt.NewEnv()
	for _, seed := range committedSeeds[:4] {
		for _, kind := range []Kind{Safe, Deterministic} {
			t.Run(fmt.Sprintf("seed-%d/%s", seed, kind), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed ^ int64(kind)<<32))
				nQubits := 2 + rng.Intn(2)
				src := Generate(rng, kind, nQubits, 8+rng.Intn(8))
				cfg := confConfig(kind, core.BackendDensity, nQubits, seed*1000003+int64(kind))

				sharded := runShardMatrix(t, env, cfg, src)
				ones := unshardedOnes(t, cfg, src, shardShots)
				if len(ones) != len(sharded.Ones) {
					t.Fatalf("sharded run has %d measurement positions, unsharded %d", len(sharded.Ones), len(ones))
				}
				for i := range ones {
					if kind == Deterministic {
						// Outcomes are certain: the PRNG layout cannot
						// matter, so sharded and unsharded agree exactly.
						if sharded.Ones[i] != ones[i] {
							t.Errorf("deterministic ones[%d]: sharded %d, unsharded %d\nprogram:\n%s",
								i, sharded.Ones[i], ones[i], src)
						}
						continue
					}
					ps := float64(sharded.Ones[i]) / shardShots
					pu := float64(ones[i]) / shardShots
					pool := (ps + pu) / 2
					sigma := math.Sqrt(2 * pool * (1 - pool) / shardShots)
					if tol := 5*sigma + 0.02; math.Abs(ps-pu) > tol {
						t.Errorf("ones[%d]: sharded %.3f vs unsharded %.3f exceeds %.3f\nprogram:\n%s",
							i, ps, pu, tol, src)
					}
				}
			})
		}
	}
}

// TestShardThresholdKeepsLegacyStream pins backward compatibility at the
// boundary: a shot count at expt.ShotShardSize must still consume the
// legacy single stream, bit for bit, while one shot more must engage the
// shard plan (observable as a different — but statistically equal —
// stream).
func TestShardThresholdKeepsLegacyStream(t *testing.T) {
	env := expt.NewEnv()
	rng := rand.New(rand.NewSource(committedSeeds[0]))
	src := Generate(rng, Safe, 2, 10)
	cfg := confConfig(Safe, core.BackendDensity, 2, 12345)

	at, err := env.RunProgram(context.Background(), cfg,
		expt.ProgramParams{Source: src, Shots: expt.ShotShardSize, ShotWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	legacy := unshardedOnes(t, cfg, src, expt.ShotShardSize)
	for i := range legacy {
		if at.Ones[i] != legacy[i] {
			t.Fatalf("at-threshold ones[%d] = %d, legacy single stream %d", i, at.Ones[i], legacy[i])
		}
	}
}
